"""Portfolio planner unit tests: greedy selection, budget, feedback."""

from __future__ import annotations

import pytest

from repro.core.feedback import Verdict
from repro.obs.events import EventLog
from repro.obs.export import derive_gauges
from repro.obs.tracer import Tracer
from repro.queries.evaluate import CandidateEvaluation
from repro.queries.generate import QueryCandidate
from repro.queries.planner import (
    FeedbackWeights,
    PlannerConfig,
    PortfolioPlanner,
)

pytestmark = pytest.mark.queries

DRIVER = "layoffs"


def ev(query, docs, relevant, source="template"):
    """A synthetic evaluation: retrieved docs with a relevant subset."""
    return CandidateEvaluation(
        candidate=QueryCandidate(DRIVER, query, source=source),
        docs=tuple(docs),
        relevant=frozenset(relevant),
    )


class TestPlannerConfig:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            PlannerConfig(budget=-1)

    def test_negative_max_queries_rejected(self):
        with pytest.raises(ValueError, match="max_queries"):
            PlannerConfig(max_queries=-1)


class TestGreedySelection:
    def test_best_gain_per_page_selected_first(self):
        pool = [
            # 2 relevant / 4 pages = 0.5 per page.
            ev("broad", ["a", "b", "c", "d"], ["a", "b"]),
            # 1 relevant / 1 page = 1.0 per page: picked first.
            ev("sharp", ["e"], ["e"]),
        ]
        portfolio = PortfolioPlanner(PlannerConfig(budget=10)).plan(
            DRIVER, pool
        )
        assert portfolio.queries == ("sharp", "broad")
        assert portfolio.selected[0].marginal_gain == 1.0
        assert portfolio.selected[1].cumulative_cost == 5

    def test_marginal_gain_discounts_already_covered_docs(self):
        pool = [
            ev("first", ["a", "b"], ["a", "b"]),
            # Overlaps entirely with "first": zero marginal gain once
            # "first" wins the alphabetical tie.
            ev("zz-echo", ["a", "b"], ["a", "b"]),
            ev("fresh", ["c", "d", "e"], ["c"]),
        ]
        portfolio = PortfolioPlanner(PlannerConfig(budget=10)).plan(
            DRIVER, pool
        )
        assert portfolio.queries == ("first", "fresh")
        assert portfolio.coverage == 3

    def test_budget_is_a_hard_bound(self):
        pool = [ev(f"q{i}", [f"d{i}a", f"d{i}b"], [f"d{i}a"])
                for i in range(10)]
        portfolio = PortfolioPlanner(PlannerConfig(budget=5)).plan(
            DRIVER, pool
        )
        assert portfolio.total_cost <= 5
        assert len(portfolio.selected) == 2  # 2 pages each

    def test_zero_cost_and_zero_gain_candidates_never_selected(self):
        pool = [
            ev("empty", [], []),
            ev("irrelevant", ["x", "y"], []),
            ev("good", ["a"], ["a"]),
        ]
        portfolio = PortfolioPlanner(PlannerConfig(budget=10)).plan(
            DRIVER, pool
        )
        assert portfolio.queries == ("good",)

    def test_max_queries_caps_portfolio_size(self):
        pool = [ev(f"q{i}", [f"d{i}"], [f"d{i}"]) for i in range(6)]
        portfolio = PortfolioPlanner(
            PlannerConfig(budget=100, max_queries=2)
        ).plan(DRIVER, pool)
        assert len(portfolio.selected) == 2

    def test_tie_breaks_are_deterministic_by_query_string(self):
        pool = [
            ev("zeta", ["a"], ["a"]),
            ev("alpha", ["b"], ["b"]),
        ]
        portfolio = PortfolioPlanner(PlannerConfig(budget=10)).plan(
            DRIVER, pool
        )
        assert portfolio.queries == ("alpha", "zeta")

    def test_covered_is_union_of_selected_relevant(self):
        pool = [
            ev("one", ["a", "b"], ["a"]),
            ev("two", ["c", "d"], ["c", "d"]),
        ]
        portfolio = PortfolioPlanner(PlannerConfig(budget=10)).plan(
            DRIVER, pool
        )
        assert portfolio.covered == frozenset({"a", "c", "d"})
        assert portfolio.precision_at_budget == pytest.approx(3 / 4)


class TestBaseline:
    def test_seeds_run_in_written_order(self):
        pool = [
            ev("seed-b", ["c"], ["c"], source="seed"),
            ev("template-x", ["z"], ["z"]),
            ev("seed-a", ["a", "b"], ["a"], source="seed"),
        ]
        baseline = PortfolioPlanner(PlannerConfig(budget=10)).baseline(
            DRIVER, pool
        )
        assert baseline.queries == ("seed-b", "seed-a")

    def test_baseline_skips_over_budget_seeds(self):
        pool = [
            ev("cheap", ["a"], ["a"], source="seed"),
            ev("huge", [f"d{i}" for i in range(9)], ["d0"],
               source="seed"),
            ev("also-cheap", ["b"], ["b"], source="seed"),
        ]
        baseline = PortfolioPlanner(PlannerConfig(budget=3)).baseline(
            DRIVER, pool
        )
        assert baseline.queries == ("cheap", "also-cheap")
        assert baseline.total_cost == 2


class TestFeedbackWeights:
    def _verdict(self, snippet_id, valid, driver_id=DRIVER):
        return Verdict(
            driver_id=driver_id,
            snippet_id=snippet_id,
            valid=valid,
            item=None,
        )

    def test_confirmed_boost_and_rejected_penalty(self):
        weights = FeedbackWeights.from_feedback([
            self._verdict("doc-1#0", True),
            self._verdict("doc-2#3", False),
        ])
        assert weights.weight(DRIVER, "doc-1") == 2.0
        assert weights.weight(DRIVER, "doc-2") == 0.25
        assert weights.weight(DRIVER, "doc-3") == 1.0

    def test_any_confirmed_snippet_wins_over_rejections(self):
        weights = FeedbackWeights.from_feedback([
            self._verdict("doc-1#0", False),
            self._verdict("doc-1#1", True),
        ])
        assert weights.weight(DRIVER, "doc-1") == 2.0

    def test_weights_are_per_driver(self):
        weights = FeedbackWeights.from_feedback([
            self._verdict("doc-1#0", True, driver_id="funding_rounds"),
        ])
        assert weights.weight("funding_rounds", "doc-1") == 2.0
        assert weights.weight(DRIVER, "doc-1") == 1.0

    def test_feedback_steers_selection(self):
        pool = [
            ev("confirmed-path", ["a", "b"], ["a"]),
            ev("rejected-path", ["c", "d"], ["c"]),
        ]
        weights = FeedbackWeights.from_feedback([
            self._verdict("c#0", False),
            self._verdict("a#0", True),
        ])
        planner = PortfolioPlanner(
            PlannerConfig(budget=2), weights=weights
        )
        portfolio = planner.plan(DRIVER, pool)
        assert portfolio.queries == ("confirmed-path",)


class TestObservability:
    def test_counters_and_portfolio_event(self):
        tracer = Tracer()
        log = EventLog()
        pool = [
            ev("one", ["a"], ["a"]),
            ev("two", ["b", "c"], ["b"]),
        ]
        planner = PortfolioPlanner(
            PlannerConfig(budget=10), tracer=tracer, event_log=log
        )
        portfolio = planner.plan(DRIVER, pool)

        counters = tracer.registry.counters
        assert counters["queries.portfolios_selected"] == 1
        assert counters["queries.queries_selected"] == 2
        assert counters["queries.pages_budgeted"] == 3

        events = log.events("portfolio_selected")
        assert len(events) == 1
        payload = events[0].payload
        assert payload["driver_id"] == DRIVER
        assert payload["budget"] == 10
        assert payload["n_candidates"] == 2
        assert payload["n_selected"] == 2
        assert payload["total_cost"] == 3
        assert payload["precision_at_budget"] == pytest.approx(
            portfolio.precision_at_budget, abs=1e-4
        )

    def test_derive_gauges_exports_planner_state(self):
        tracer = Tracer()
        planner = PortfolioPlanner(
            PlannerConfig(budget=10), tracer=tracer
        )
        tracer.count("queries.candidates_evaluated", 4)
        portfolio = planner.plan(
            DRIVER, [ev("one", ["a"], ["a"]), ev("none", ["b"], [])]
        )
        gauges = derive_gauges(
            tracer.registry, portfolios=[portfolio]
        )
        assert gauges["queries_selection_rate"] == pytest.approx(1 / 4)
        label = f'{{driver="{DRIVER}"}}'
        assert gauges[f"queries_portfolio_size{label}"] == 1.0
        assert gauges[f"queries_portfolio_cost{label}"] == 1.0
        assert gauges[f"queries_portfolio_budget{label}"] == 10.0
        assert gauges[f"queries_portfolio_precision{label}"] == 1.0
