"""Candidate evaluation against the gathered store's ground truth."""

from __future__ import annotations

import pytest

from repro.core.drivers import available_driver_ids
from repro.obs.events import EventLog
from repro.obs.tracer import Tracer
from repro.queries.evaluate import (
    CandidateEvaluation,
    QueryEvaluator,
    seed_evaluations,
)
from repro.queries.generate import QueryCandidate

pytestmark = pytest.mark.queries


class TestStoreGroundTruth:
    def test_every_driver_has_relevant_documents(self, ground_truth):
        for driver_id in available_driver_ids():
            assert ground_truth.relevant_docs(driver_id), (
                f"extended mix should put {driver_id} trigger docs "
                f"on the web"
            )

    def test_relevant_docs_partition_by_driver(self, ground_truth):
        funding = ground_truth.relevant_docs("funding_rounds")
        layoffs = ground_truth.relevant_docs("layoffs")
        assert not funding & layoffs

    def test_is_relevant_matches_relevant_docs(self, ground_truth):
        docs = ground_truth.relevant_docs("layoffs")
        doc_id = next(iter(docs))
        assert ground_truth.is_relevant("layoffs", doc_id)
        assert not ground_truth.is_relevant("funding_rounds", doc_id)
        assert not ground_truth.is_relevant("layoffs", "no-such-doc")


class TestCandidateEvaluation:
    def test_metrics(self):
        candidate = QueryCandidate("layoffs", '"job cuts"')
        evaluation = CandidateEvaluation(
            candidate=candidate,
            docs=("a", "b", "c", "d"),
            relevant=frozenset({"a", "c"}),
        )
        assert evaluation.cost == 4
        assert evaluation.coverage == 2
        assert evaluation.precision == pytest.approx(0.5)

    def test_zero_cost_has_zero_precision(self):
        evaluation = CandidateEvaluation(
            candidate=QueryCandidate("layoffs", "zzz"),
            docs=(),
            relevant=frozenset(),
        )
        assert evaluation.cost == 0
        assert evaluation.precision == 0.0


class TestQueryEvaluator:
    def test_seed_query_finds_relevant_docs(
        self, queries_etap, ground_truth
    ):
        evaluator = QueryEvaluator(
            queries_etap.engine, ground_truth, top_k=20
        )
        evaluation = evaluator.evaluate(
            QueryCandidate("layoffs", '"job cuts"', source="seed")
        )
        assert 0 < evaluation.cost <= 20
        assert evaluation.relevant <= set(evaluation.docs)
        assert evaluation.coverage > 0

    def test_counter_and_event_emission(
        self, queries_etap, ground_truth
    ):
        tracer = Tracer()
        log = EventLog()
        evaluator = QueryEvaluator(
            queries_etap.engine,
            ground_truth,
            top_k=10,
            tracer=tracer,
            event_log=log,
        )
        candidates = [
            QueryCandidate("funding_rounds", '"funding round"', "seed"),
            QueryCandidate("funding_rounds", '"series a"', "template"),
        ]
        evaluations = evaluator.evaluate_all(candidates)
        assert len(evaluations) == 2
        assert tracer.registry.counters[
            "queries.candidates_evaluated"
        ] == 2
        events = log.events("query_candidate_evaluated")
        assert len(events) == 2
        payload = events[0].payload
        assert payload["driver_id"] == "funding_rounds"
        assert payload["query"] == '"funding round"'
        assert payload["source"] == "seed"
        assert payload["cost"] == evaluations[0].cost
        assert payload["coverage"] == evaluations[0].coverage

    def test_null_recorders_by_default(self, queries_etap, ground_truth):
        evaluator = QueryEvaluator(queries_etap.engine, ground_truth)
        evaluation = evaluator.evaluate(
            QueryCandidate("layoffs", '"of its workforce"')
        )
        assert evaluation.cost >= 0  # no recorder errors


def test_seed_evaluations_filters_by_source():
    def make(query, source):
        return CandidateEvaluation(
            candidate=QueryCandidate("layoffs", query, source=source),
            docs=(),
            relevant=frozenset(),
        )

    pool = [make("a", "seed"), make("b", "template"), make("c", "seed")]
    seeds = seed_evaluations(pool)
    assert [e.candidate.query for e in seeds] == ["a", "c"]
