"""Shared fixtures for the query-planner suite.

One small gathered ETAP — extended corpus mix so all five drivers
(including funding_rounds and layoffs) have trigger documents on the
web — is built once per session and reused across files.
"""

from __future__ import annotations

import pytest

from repro.core.drivers import available_driver_ids, get_driver
from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.queries.evaluate import StoreGroundTruth


@pytest.fixture(scope="session")
def queries_etap():
    """A gathered (not trained) ETAP over the extended five-driver mix."""
    mix = dict(CorpusConfig().mix)
    mix["funding_news"] = 0.07
    mix["layoff_news"] = 0.07
    web = build_web(240, CorpusConfig(seed=23, mix=mix))
    drivers = [get_driver(d) for d in available_driver_ids()]
    etap = Etap.from_web(
        web,
        drivers=drivers,
        config=EtapConfig(top_k_per_query=30, negative_sample_size=400),
    )
    etap.gather()
    return etap


@pytest.fixture(scope="session")
def ground_truth(queries_etap):
    return StoreGroundTruth(queries_etap.store)
