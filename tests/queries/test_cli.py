"""CLI e2e: `repro queries plan` and `repro recipe run/validate`."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

pytestmark = pytest.mark.queries

RECIPES_DIR = Path(__file__).resolve().parents[2] / "configs" / "recipes"


class TestQueriesPlan:
    def test_plan_single_driver(self, capsys):
        code = main([
            "queries", "plan", "--docs", "200", "--seed", "5",
            "--driver", "layoffs", "--budget", "80", "--top-k", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gathered" in out
        assert "layoffs" in out
        assert "planned:" in out
        assert "seeds:" in out
        assert "P@B" in out

    def test_unknown_driver_exits_2_with_clean_message(self, capsys):
        code = main([
            "queries", "plan", "--docs", "100",
            "--driver", "steel_output",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "steel_output" in err
        assert "available" in err
        assert "Traceback" not in err


class TestRecipeValidate:
    @pytest.mark.parametrize(
        "path",
        sorted(RECIPES_DIR.glob("*.yaml")),
        ids=lambda p: p.stem,
    )
    def test_committed_recipes_are_valid(self, path, capsys):
        code = main(["recipe", "validate", str(path)])
        assert code == 0
        assert "is valid" in capsys.readouterr().out

    def test_schema_errors_surface_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "name: broken\ndrivers:\n  - steel_output\ntypo: 1\n"
        )
        code = main(["recipe", "validate", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid recipe" in err
        assert "unknown driver 'steel_output'" in err
        assert "unknown field 'typo'" in err
        assert "Traceback" not in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main([
            "recipe", "validate", str(tmp_path / "absent.yaml"),
        ])
        assert code == 2
        assert "cannot read file" in capsys.readouterr().err


class TestRecipeRun:
    def test_run_with_docs_override(self, tmp_path, capsys):
        recipe = tmp_path / "tiny.yaml"
        recipe.write_text(
            "name: tiny-cli\n"
            "drivers:\n"
            "  - layoffs\n"
            "n_docs: 600\n"
            "seed: 13\n"
            "negative_sample_size: 200\n"
            "planner:\n"
            "  budget: 80\n"
            "  top_k: 20\n"
            "  max_candidates: 40\n"
            "alerts:\n"
            "  cycles: 1\n"
            "  docs_per_cycle: 15\n"
        )
        code = main([
            "recipe", "run", str(recipe), "--docs", "160",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recipe 'tiny-cli'" in out
        assert "planned portfolios" in out
        assert "layoffs" in out
        assert "alerts minted" in out

    def test_invalid_recipe_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: [unclosed\n")
        code = main(["recipe", "run", str(bad)])
        assert code == 2
        assert "invalid YAML" in capsys.readouterr().err
