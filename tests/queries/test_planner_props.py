"""Property suite: the planner's invariants under arbitrary pools.

Greedy selection over a submodular coverage gain and modular page cost
guarantees three things regardless of the candidate pool: the budget
is never exceeded, the selected gain-per-page ratios are non-increasing
(each pick was the best available, and coverage gains only shrink as
docs get covered), and planning is fully deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.evaluate import CandidateEvaluation
from repro.queries.generate import QueryCandidate
from repro.queries.planner import PlannerConfig, PortfolioPlanner

pytestmark = pytest.mark.queries

DOC_IDS = tuple(f"doc-{i}" for i in range(16))


@st.composite
def evaluation_pools(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    pool = []
    for i in range(n):
        docs = tuple(draw(st.lists(
            st.sampled_from(DOC_IDS), unique=True, max_size=6
        )))
        relevant = frozenset(
            doc for doc in docs if draw(st.booleans())
        )
        source = draw(st.sampled_from(["seed", "template"]))
        pool.append(CandidateEvaluation(
            candidate=QueryCandidate(
                "layoffs", f"q{i}", source=source
            ),
            docs=docs,
            relevant=relevant,
        ))
    return pool


budgets = st.integers(min_value=0, max_value=25)


@settings(deadline=None)
@given(pool=evaluation_pools(), budget=budgets)
def test_cost_never_exceeds_budget(pool, budget):
    planner = PortfolioPlanner(PlannerConfig(budget=budget))
    assert planner.plan("layoffs", pool).total_cost <= budget
    assert planner.baseline("layoffs", pool).total_cost <= budget


@settings(deadline=None)
@given(pool=evaluation_pools(), budget=budgets)
def test_gain_per_page_is_non_increasing(pool, budget):
    portfolio = PortfolioPlanner(PlannerConfig(budget=budget)).plan(
        "layoffs", pool
    )
    ratios = [item.gain_per_page for item in portfolio.selected]
    assert all(
        earlier >= later - 1e-9
        for earlier, later in zip(ratios, ratios[1:])
    )


@settings(deadline=None)
@given(pool=evaluation_pools(), budget=budgets)
def test_planning_is_deterministic(pool, budget):
    config = PlannerConfig(budget=budget)
    first = PortfolioPlanner(config).plan("layoffs", pool)
    second = PortfolioPlanner(config).plan("layoffs", list(pool))
    assert first == second


@settings(deadline=None)
@given(pool=evaluation_pools(), budget=budgets)
def test_covered_is_exactly_the_union_of_selected(pool, budget):
    portfolio = PortfolioPlanner(PlannerConfig(budget=budget)).plan(
        "layoffs", pool
    )
    union = frozenset().union(
        *(item.evaluation.relevant for item in portfolio.selected)
    ) if portfolio.selected else frozenset()
    assert portfolio.covered == union


@settings(deadline=None)
@given(pool=evaluation_pools(), budget=budgets)
def test_every_selection_has_positive_gain_and_cost(pool, budget):
    portfolio = PortfolioPlanner(PlannerConfig(budget=budget)).plan(
        "layoffs", pool
    )
    for item in portfolio.selected:
        assert item.marginal_gain > 0
        assert item.marginal_cost > 0
