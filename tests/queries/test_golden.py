"""Golden regression: per-driver planner output is pinned to a file.

Runs the fixed-seed scenario in ``tests/golden/regen_queries.py`` —
gather the extended five-driver web, generate + evaluate candidates,
plan a portfolio per driver — and compares against the committed
snapshot.  Any drift in candidate generation order, search ranking,
ground-truth labeling, or greedy tie-breaking shows up here as a diff.

If the change is intentional, regenerate and commit the snapshot:

    PYTHONPATH=src python tests/golden/regen_queries.py
"""

from __future__ import annotations

import json

import pytest

from tests.golden.regen_queries import GOLDEN_PATH, snapshot

pytestmark = pytest.mark.queries


def test_planner_output_matches_golden_snapshot():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = snapshot()
    assert current["params"] == golden["params"], (
        "scenario parameters changed — regenerate the golden file: "
        "PYTHONPATH=src python tests/golden/regen_queries.py"
    )
    assert set(current["drivers"]) == set(golden["drivers"])
    for driver_id, plan in golden["drivers"].items():
        assert current["drivers"][driver_id] == plan, (
            f"planner output drifted for {driver_id!r} — if "
            f"intentional, regenerate: "
            f"PYTHONPATH=src python tests/golden/regen_queries.py"
        )


def test_golden_covers_both_new_drivers():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for driver_id in ("funding_rounds", "layoffs"):
        plan = golden["drivers"][driver_id]
        assert plan["planned"]["queries"], (
            f"{driver_id} portfolio is empty in the golden snapshot"
        )
        assert (
            plan["planned"]["precision_at_budget"]
            > plan["baseline"]["precision_at_budget"]
        ), f"planner does not beat seeds for {driver_id}"
