"""Candidate generation: determinism, dedup, seeds-first, capping."""

from __future__ import annotations

import pytest

from repro.core.drivers import available_driver_ids, get_driver
from repro.obs.tracer import Tracer
from repro.queries.generate import (
    SOURCE_SEED,
    SOURCE_TEMPLATE,
    CandidateGenerator,
    DriverQueryLexicon,
    QueryCandidate,
    _expand_template,
    default_lexicons,
    entity_slot_companies,
)

pytestmark = pytest.mark.queries


class TestDefaultLexicons:
    def test_every_available_driver_has_a_lexicon(self):
        lexicons = default_lexicons()
        assert set(lexicons) == set(available_driver_ids())

    def test_company_slot_override(self):
        lexicons = default_lexicons(companies=("Acme Corp",))
        ma = lexicons["mergers_acquisitions"]
        assert ma.slots["company"] == ("Acme Corp",)

    def test_entity_slot_companies_are_canonical_and_bounded(self):
        companies = entity_slot_companies(n=4)
        assert len(companies) == 4
        assert all(isinstance(name, str) and name for name in companies)
        # Deterministic: same inventory head every call.
        assert companies == entity_slot_companies(n=4)


class TestExpandTemplate:
    def test_no_slots_yields_template_verbatim(self):
        assert list(_expand_template("plain query", {})) == ["plain query"]

    def test_cartesian_expansion_in_inventory_order(self):
        out = list(_expand_template(
            "{a} {b}", {"a": ("x", "y"), "b": ("1", "2")}
        ))
        assert out == ["x 1", "x 2", "y 1", "y 2"]

    def test_unknown_slot_raises_with_known_slots_listed(self):
        with pytest.raises(KeyError, match="unknown slot 'missing'"):
            list(_expand_template("{missing}", {"present": ("v",)}))


class TestCandidateGenerator:
    def test_deterministic_across_calls_and_instances(self):
        driver = get_driver("funding_rounds")
        first = CandidateGenerator().generate(driver)
        second = CandidateGenerator().generate(driver)
        assert first == second

    def test_seeds_come_first_in_written_order(self):
        driver = get_driver("layoffs")
        candidates = CandidateGenerator().generate(driver)
        n_seeds = len(driver.smart_queries)
        head = candidates[:n_seeds]
        assert [c.query for c in head] == list(driver.smart_queries)
        assert all(c.source == SOURCE_SEED for c in head)
        assert all(
            c.source == SOURCE_TEMPLATE for c in candidates[n_seeds:]
        )

    def test_template_reproducing_a_seed_is_folded_into_it(self):
        driver = get_driver("layoffs")
        lexicon = DriverQueryLexicon(
            driver_id="layoffs",
            templates=('"{noun}"',),
            # '"job cuts"' is also a hand-written seed query.
            slots={"noun": ("job cuts", "severance package")},
        )
        candidates = CandidateGenerator(
            lexicons={"layoffs": lexicon}
        ).generate(driver)
        queries = [c.query for c in candidates]
        assert queries.count('"job cuts"') == 1
        by_query = {c.query: c for c in candidates}
        assert by_query['"job cuts"'].source == SOURCE_SEED
        assert by_query['"severance package"'].source == SOURCE_TEMPLATE

    def test_max_candidates_caps_templates_but_never_drops_seeds(self):
        driver = get_driver("mergers_acquisitions")
        n_seeds = len(driver.smart_queries)
        generator = CandidateGenerator(max_candidates=n_seeds - 1)
        candidates = generator.generate(driver)
        assert [c.query for c in candidates] == list(driver.smart_queries)

        capped = CandidateGenerator(max_candidates=n_seeds + 3)
        assert len(capped.generate(driver)) == n_seeds + 3

    def test_driver_without_lexicon_yields_only_seeds(self):
        driver = get_driver("revenue_growth")
        candidates = CandidateGenerator(lexicons={}).generate(driver)
        assert [c.query for c in candidates] == list(driver.smart_queries)

    def test_generation_counter_recorded(self):
        tracer = Tracer()
        driver = get_driver("funding_rounds")
        candidates = CandidateGenerator(tracer=tracer).generate(driver)
        assert tracer.registry.counters[
            "queries.candidates_generated"
        ] == len(candidates)

    def test_candidates_are_hashable_records(self):
        candidate = QueryCandidate("layoffs", '"job cuts"')
        assert candidate in {candidate}
