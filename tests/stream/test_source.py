"""Stream sources: replayable seek, fixed splits, fault filtering."""

from __future__ import annotations

import pytest

from repro.robustness import FaultyWeb, get_profile
from repro.stream import (
    EvolvingWebStream,
    MicroBatch,
    SequenceStream,
    StreamDocument,
    batches_of,
)

from tests.stream.conftest import build_stream_web, evolve_config


def _batch_fingerprint(batch):
    return (
        batch.cycle,
        tuple(
            (d.doc_id, d.published_day, d.url, hash(d.text))
            for d in batch.documents
        ),
    )


def _doc(i: int, day: int = 1) -> StreamDocument:
    return StreamDocument(
        doc_id=f"d{i}",
        url=f"http://x/{i}",
        title=f"t{i}",
        text=f"text {i}",
        published_day=day,
    )


class TestEvolvingWebStream:
    def test_batches_are_deterministic_across_instances(self):
        first = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        second = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        for _ in range(3):
            assert _batch_fingerprint(
                first.next_batch()
            ) == _batch_fingerprint(second.next_batch())

    def test_seek_replays_to_the_same_tail(self):
        reference = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        batches = [reference.next_batch() for _ in range(4)]

        resumed = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        resumed.seek(2)
        assert resumed.cycle == 2
        for expected in batches[2:]:
            assert _batch_fingerprint(
                resumed.next_batch()
            ) == _batch_fingerprint(expected)

    def test_seek_backwards_rejected(self):
        stream = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        stream.next_batch()
        with pytest.raises(ValueError, match="backwards"):
            stream.seek(0)

    def test_event_time_advances_with_cycles(self):
        stream = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=6
        )
        first = stream.next_batch()
        second = stream.next_batch()
        assert first.max_event_time is not None
        assert second.max_event_time == first.max_event_time + 1

    def test_docs_per_cycle_validated(self):
        with pytest.raises(ValueError):
            EvolvingWebStream(build_stream_web(), docs_per_cycle=0)

    def test_faulty_web_gets_resilient_fetch_and_drops_are_counted(self):
        web = FaultyWeb(
            build_stream_web(), get_profile("lossy"), seed=5
        )
        stream = EvolvingWebStream(
            web, config=evolve_config(), docs_per_cycle=10
        )
        assert stream.fetcher is not None
        total_kept = 0
        for _ in range(4):
            batch = stream.next_batch()
            total_kept += len(batch.documents)
            assert len(batch.documents) + batch.dropped + batch.degraded == 10
        assert stream.dropped > 0  # lossy profile actually loses pages
        assert total_kept > 0

    def test_healthy_web_keeps_every_published_doc(self):
        stream = EvolvingWebStream(
            build_stream_web(), config=evolve_config(), docs_per_cycle=7
        )
        batch = stream.next_batch()
        assert len(batch.documents) == 7
        assert batch.dropped == 0 and batch.degraded == 0


class TestSequenceStream:
    def test_renumbers_cycles_and_serves_in_order(self):
        stream = SequenceStream([
            MicroBatch(cycle=9, documents=(_doc(1),)),
            MicroBatch(cycle=9, documents=(_doc(2),)),
        ])
        assert [b.cycle for b in stream.batches] == [1, 2]
        assert stream.cycle == 0
        assert stream.next_batch().documents[0].doc_id == "d1"
        assert stream.cycle == 1

    def test_seek_and_exhaustion(self):
        stream = SequenceStream(
            [MicroBatch(cycle=1, documents=(_doc(i),)) for i in range(3)]
        )
        stream.seek(2)
        assert stream.next_batch().documents[0].doc_id == "d2"
        with pytest.raises(StopIteration):
            stream.next_batch()
        with pytest.raises(ValueError, match="backwards"):
            stream.seek(1)
        with pytest.raises(ValueError, match="past end"):
            stream.seek(99)

    def test_iteration_consumes_remaining(self):
        stream = SequenceStream(
            [MicroBatch(cycle=1, documents=(_doc(i),)) for i in range(3)]
        )
        stream.seek(1)
        assert [b.cycle for b in stream] == [2, 3]


class TestBatchesOf:
    def test_sizes_differ_by_at_most_one_and_order_is_preserved(self):
        docs = [_doc(i) for i in range(10)]
        stream = batches_of(docs, 3)
        sizes = [len(b.documents) for b in stream.batches]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        flattened = [
            d.doc_id for b in stream.batches for d in b.documents
        ]
        assert flattened == [d.doc_id for d in docs]

    def test_more_batches_than_docs_collapses(self):
        docs = [_doc(i) for i in range(2)]
        stream = batches_of(docs, 5)
        assert len(stream) == 2
        assert all(len(b.documents) == 1 for b in stream.batches)

    def test_empty_and_invalid(self):
        assert len(batches_of([], 3)) == 1  # one empty batch
        with pytest.raises(ValueError):
            batches_of([_doc(1)], 0)


def test_max_event_time_of_empty_batch_is_none():
    assert MicroBatch(cycle=1, documents=()).max_event_time is None
