"""Watermark semantics: lateness routing as executable properties.

The contract (docs/STREAMING.md):

* the watermark is the max event time (``published_day``) over every
  batch seen so far, advancing at batch commit;
* a document is late iff ``published_day < watermark - allowed_lateness``
  *at the start of its batch*; late-but-within-lateness documents are
  processed normally (they always mint whatever an in-order run would
  have minted);
* beyond-lateness documents go to the late-arrival side channel —
  recorded on the processor, in the WAL and in the flight recorder,
  never silently dropped, and never minting alerts;
* ``allowed_lateness=None`` disables the watermark entirely.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.evolve import WebEvolver
from repro.obs import EventLog
from repro.stream import (
    StreamProcessor,
    WriteAheadLog,
    batches_of,
    stream_document_of,
)

from tests.stream.conftest import evolve_config

POOL_SIZE = 12


@pytest.fixture(scope="module")
def doc_pool(fresh_run):
    """A fixed pool of realistic stream documents (days get rewritten)."""
    _, web = fresh_run()
    return [
        stream_document_of(document)
        for document in WebEvolver(web, evolve_config()).advance(
            POOL_SIZE
        )
    ]


def _with_days(pool, days):
    return [
        dataclasses.replace(document, published_day=day)
        for document, day in zip(pool, days)
    ]


def expected_routing(batches, lateness):
    """Reference implementation of the watermark contract."""
    watermark = None
    late: set[str] = set()
    on_time: list[str] = []
    for batch in batches:
        for document in batch.documents:
            if (
                lateness is not None
                and watermark is not None
                and document.published_day < watermark - lateness
            ):
                late.add(document.doc_id)
            else:
                on_time.append(document.doc_id)
        if batch.documents:
            newest = max(d.published_day for d in batch.documents)
            watermark = (
                newest if watermark is None else max(watermark, newest)
            )
    return on_time, late, watermark


routing_cases = st.tuples(
    st.lists(
        st.integers(min_value=0, max_value=20),
        min_size=POOL_SIZE, max_size=POOL_SIZE,
    ),
    st.integers(min_value=1, max_value=POOL_SIZE),
    st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(case=routing_cases)
def test_routing_matches_the_reference_model(fresh_run, doc_pool, case):
    days, n_batches, lateness = case
    documents = _with_days(doc_pool, days)
    source = batches_of(documents, n_batches)
    on_time, late, watermark = expected_routing(
        source.batches, lateness
    )

    etap, _ = fresh_run()
    processor = StreamProcessor(etap, allowed_lateness=lateness)
    processor.run(source, until_cycle=len(source))

    assert {a.doc_id for a in processor.late_arrivals} == late
    stored = set(processor.etap.store.doc_ids())
    assert {d for d in on_time} <= stored
    assert not late & stored, "late docs must never be ingested"
    assert processor.watermark == watermark
    if lateness is None:
        assert not processor.late_arrivals


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(case=routing_cases)
def test_on_time_alerts_equal_the_unwatermarked_run(
    fresh_run, doc_pool, case
):
    """Per-document scoring independence, as an alert-level property.

    The watermarked run's alerts must be exactly the watermark-disabled
    run's alerts minus those from documents routed late — documents
    within allowed lateness therefore *always* mint what an in-order
    run would have minted.
    """
    days, n_batches, lateness = case
    documents = _with_days(doc_pool, days)
    source = batches_of(documents, n_batches)
    _, late, _ = expected_routing(source.batches, lateness)

    etap, _ = fresh_run()
    reference = StreamProcessor(etap, allowed_lateness=None)
    reference.run(
        batches_of(documents, n_batches), until_cycle=len(source)
    )

    etap2, _ = fresh_run()
    watermarked = StreamProcessor(etap2, allowed_lateness=lateness)
    watermarked.run(source, until_cycle=len(source))

    expected_ids = {
        a.alert_id for a in reference.alerts if a.doc_id not in late
    }
    assert {a.alert_id for a in watermarked.alerts} == expected_ids
    assert not {
        a.doc_id for a in watermarked.alerts
    } & late, "a late-routed doc minted an alert"


class TestSideChannel:
    def _late_scenario(self, doc_pool):
        """Cycle 1 at day 10, cycle 2 smuggles in a day-1 straggler."""
        on_time = _with_days(doc_pool[:4], [10, 10, 10, 10])
        straggler = dataclasses.replace(
            doc_pool[4], published_day=1
        )
        fresh = dataclasses.replace(doc_pool[5], published_day=11)
        return batches_of([*on_time, straggler, fresh], 2), straggler

    def test_side_channel_is_not_silently_empty(
        self, fresh_run, doc_pool, tmp_path
    ):
        """Regression: injected lateness MUST surface in the side
        channel, the WAL and the flight recorder — a refactor that
        quietly drops late documents fails here."""
        source, straggler = self._late_scenario(doc_pool)
        etap, _ = fresh_run()
        event_log = EventLog()
        processor = StreamProcessor(
            etap,
            wal=WriteAheadLog(tmp_path / "wal.jsonl"),
            allowed_lateness=2,
            event_log=event_log,
        )
        processor.run(source, until_cycle=len(source))

        assert processor.late_arrivals, (
            "lateness was injected but the side channel is empty"
        )
        (arrival,) = processor.late_arrivals
        assert arrival.doc_id == straggler.doc_id
        assert arrival.published_day == 1
        assert arrival.watermark == 10

        wal_types = [
            r.event_type for r in processor.wal.read()
        ]
        assert "late_arrival" in wal_types
        recorded = event_log.events("late_arrival")
        assert [e.payload["doc_id"] for e in recorded] == [
            straggler.doc_id
        ]
        processor.close()

    def test_straggler_never_mints_and_is_not_stored(
        self, fresh_run, doc_pool
    ):
        source, straggler = self._late_scenario(doc_pool)
        etap, _ = fresh_run()
        processor = StreamProcessor(etap, allowed_lateness=2)
        processor.run(source, until_cycle=len(source))
        assert straggler.doc_id not in processor.etap.store.doc_ids()
        assert all(
            a.doc_id != straggler.doc_id for a in processor.alerts
        )

    def test_zero_lateness_still_accepts_the_current_frontier(
        self, fresh_run, doc_pool
    ):
        """L=0 rejects anything strictly older than the watermark but
        keeps same-day documents."""
        docs = _with_days(doc_pool[:4], [5, 5, 5, 4])
        source = batches_of(docs, 2)  # [5, 5] then [5, 4]
        etap, _ = fresh_run()
        processor = StreamProcessor(etap, allowed_lateness=0)
        processor.run(source, until_cycle=len(source))
        assert {a.doc_id for a in processor.late_arrivals} == {
            docs[3].doc_id
        }


def test_lateness_validation(fresh_run):
    etap, _ = fresh_run()
    with pytest.raises(ValueError, match="allowed_lateness"):
        StreamProcessor(etap, allowed_lateness=-1)
