"""End-to-end `repro stream`: fresh run, simulated crash, resume.

The CLI contract under test: a checkpoint directory is the whole unit
of recovery.  Running the command twice against the same directory —
once with ``--kill-after`` (exit 3), once without — must land on the
same final checkpoint as a single uninterrupted run, with replayed
alerts flagged recovered rather than re-delivered.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.persistence import CheckpointStore

DOCS = 120
CYCLES = 2
DOCS_PER_CYCLE = 6
KILL_AFTER = 5  # inside cycle 1's WAL records at this scale


def _stream_args(checkpoint_dir, *extra: str) -> list[str]:
    return [
        "stream",
        "--checkpoint-dir", str(checkpoint_dir),
        "--docs", str(DOCS),
        "--seed", "7",
        "--cycles", str(CYCLES),
        "--docs-per-cycle", str(DOCS_PER_CYCLE),
        "--alert-threshold", "0.7",
        *extra,
    ]


def _final_state(checkpoint_dir) -> tuple:
    """The latest checkpoint, normalized for cross-run comparison.

    ``recovered`` flags are stripped (they mark *how* an alert got
    into the state, not *what* was alerted) — everything else must
    match exactly.
    """
    latest = CheckpointStore(Path(checkpoint_dir) / "checkpoints").latest()
    assert latest is not None, f"no checkpoint in {checkpoint_dir}"
    checkpoint_id, state = latest
    alerts = sorted(
        tuple(sorted(
            (key, value)
            for key, value in alert.items()
            if key != "recovered"
        ))
        for alert in state["alerts"]
    )
    return (
        checkpoint_id,
        state["cycle"],
        state["watermark"],
        state["generation"],
        sorted(state["emitted_keys"]),
        alerts,
        sorted(doc["doc_id"] for doc in state["documents"]),
    )


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    ws = tmp_path_factory.mktemp("stream-clean")
    assert main(_stream_args(ws)) == 0
    return ws


class TestFreshRun:
    def test_reports_progress_and_summary(
        self, uninterrupted, tmp_path, capsys
    ):
        code = main(_stream_args(tmp_path / "ws"))
        assert code == 0
        out = capsys.readouterr().out
        assert "trained and saved 3 classifiers" in out
        assert "cycle 1:" in out and "cycle 2:" in out
        assert "[checkpoint]" in out
        assert "stream done: cycle 2" in out

    def test_checkpoint_dir_layout(self, uninterrupted):
        assert (uninterrupted / "wal.jsonl").exists()
        assert (uninterrupted / "checkpoints").is_dir()
        models = list(
            (uninterrupted / "models").glob("*.classifier.json")
        )
        assert len(models) == 3
        assert _final_state(uninterrupted)[1] == CYCLES


class TestCrashAndResume:
    @pytest.fixture(scope="class")
    def crashed_then_resumed(self, tmp_path_factory):
        ws = tmp_path_factory.mktemp("stream-crash")
        first = main(
            _stream_args(ws, "--kill-after", str(KILL_AFTER))
        )
        second = main(_stream_args(ws))
        return ws, first, second

    def test_exit_codes(self, crashed_then_resumed):
        _, first, second = crashed_then_resumed
        assert first == 3, "simulated crash must exit 3"
        assert second == 0, "resume must complete cleanly"

    def test_resume_reuses_saved_classifiers(
        self, crashed_then_resumed, tmp_path, capsys
    ):
        ws, _, _ = crashed_then_resumed
        capsys.readouterr()
        assert main(_stream_args(ws)) == 0  # third run: all done
        out = capsys.readouterr().out
        assert "loaded 3 classifiers" in out
        assert "resumed from checkpoint" in out

    def test_converges_to_the_uninterrupted_state(
        self, crashed_then_resumed, uninterrupted
    ):
        ws, _, _ = crashed_then_resumed
        assert _final_state(ws) == _final_state(uninterrupted)

    def test_crash_message_points_at_recovery(
        self, tmp_path, capsys
    ):
        ws = tmp_path / "ws"
        code = main(_stream_args(ws, "--kill-after", "3"))
        assert code == 3
        err = capsys.readouterr().err
        assert "simulated crash after WAL record 3" in err
        assert "--checkpoint-dir" in err


class TestIdempotentRerun:
    def test_rerun_after_completion_changes_nothing(
        self, uninterrupted, capsys
    ):
        before = _final_state(uninterrupted)
        capsys.readouterr()
        assert main(_stream_args(uninterrupted)) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert _final_state(uninterrupted) == before


class TestParser:
    def test_checkpoint_dir_required(self):
        with pytest.raises(SystemExit):
            main(["stream", "--docs", "100"])
