"""Fixtures for the streaming suite.

The recovery fuzz tests need a *fresh* base pipeline per run — a crash
kills the process, and the resumed process rebuilds its base corpus
from scratch.  Training once per run would dominate the suite, so the
session trains a single reference pipeline and every run clones its
store into a new :class:`Etap` that shares the trained classifiers and
the annotate-once text engine (content-keyed caches make the re-index
essentially free).  The clone is behaviourally identical to a freshly
gathered + trained pipeline because gather and train are deterministic
functions of (n_docs, seed).
"""

from __future__ import annotations

import pytest

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.gather.store import DocumentStore
from repro.search.engine import SearchEngine

#: The streaming scenario's identity (shared by every stream test).
STREAM_N_DOCS = 100
STREAM_SEED = 29
#: The evolver must not replay the corpus seed (dedup would drop
#: every "new" page); see tests/golden/regen.py for the same pattern.
STREAM_EVOLVE_SEED = 83
STREAM_CONFIG = EtapConfig(top_k_per_query=40, negative_sample_size=600)


def build_stream_web():
    """The deterministic base web every stream scenario starts from."""
    return build_web(STREAM_N_DOCS, CorpusConfig(seed=STREAM_SEED))


def evolve_config() -> CorpusConfig:
    return CorpusConfig(seed=STREAM_EVOLVE_SEED)


@pytest.fixture(scope="session")
def stream_base():
    """One gathered + trained reference pipeline for the session."""
    etap = Etap.from_web(build_stream_web(), config=STREAM_CONFIG)
    etap.gather()
    etap.train()
    return etap


@pytest.fixture(scope="session")
def fresh_run(stream_base):
    """Factory producing an independent ``(etap, web)`` base per call.

    Each call returns a new :class:`Etap` over a new store/engine/web —
    mutations from one streaming run (ingested docs, evolver state)
    never leak into the next — while classifiers and annotation caches
    are shared with the session's reference pipeline.
    """

    def factory():
        web = build_stream_web()
        store = DocumentStore()
        engine = SearchEngine(text_engine=stream_base.text_engine)
        for document in stream_base.store:
            store.add(document)
            engine.add_document(
                document.doc_id, document.text, document.title
            )
        etap = Etap(
            store=store,
            engine=engine,
            config=STREAM_CONFIG,
            web=web,
            text_engine=stream_base.text_engine,
        )
        etap.classifiers = dict(stream_base.classifiers)
        return etap, web

    return factory
