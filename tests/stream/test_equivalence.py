"""Streaming == batch: the micro-batch split never changes the alerts.

Two layers:

* the **golden pin** — the committed snapshot's ``stream`` section is
  recomputed live (``tests/golden/regen.py:stream_snapshot``) and must
  match byte-for-byte, and must equal the batch path's ``alert_ids``;
* the **live cross-check** at the stream suite's own scale — the same
  evolved documents through :class:`AlertService` (one big poll) and
  through :class:`StreamProcessor` under several splits, compared
  directly.

Equivalence requires the watermark disabled (``allowed_lateness=None``):
the synthetic corpus publishes days in random order, and lateness
routing is pinned by its own property suite, not here.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.core.alerts import AlertService
from repro.corpus.evolve import WebEvolver
from repro.stream import StreamProcessor, batches_of, stream_document_of

from tests.golden.regen import GOLDEN_PATH, stream_snapshot
from tests.stream.conftest import (
    STREAM_CONFIG,
    build_stream_web,
    evolve_config,
)

N_NEW_DOCS = 18


@pytest.fixture(scope="module")
def evolved():
    """(batch alert ids, per-driver counts, the evolved documents).

    The batch path polls :class:`AlertService`, which re-crawls — so
    this base is built with a live gatherer (``Etap.from_web``), not
    the store-clone factory the stream runs use.
    """
    from repro.core.etap import Etap

    web = build_stream_web()
    etap = Etap.from_web(web, config=STREAM_CONFIG)
    etap.gather()
    etap.train()
    documents = [
        stream_document_of(document)
        for document in WebEvolver(web, evolve_config()).advance(
            N_NEW_DOCS
        )
    ]
    report = AlertService(etap).poll()
    assert report.alerts, "batch path minted no alerts (vacuous test)"
    return (
        sorted(alert.alert_id for alert in report.alerts),
        dict(sorted(
            Counter(a.driver_id for a in report.alerts).items()
        )),
        documents,
    )


@pytest.mark.parametrize("n_batches", [1, 2, 5, N_NEW_DOCS])
def test_stream_matches_batch_for_any_split(
    fresh_run, evolved, n_batches
):
    batch_ids, batch_counts, documents = evolved
    etap, _ = fresh_run()
    processor = StreamProcessor(etap, allowed_lateness=None)
    source = batches_of(documents, n_batches)
    processor.run(source, until_cycle=len(source))
    assert sorted(a.alert_id for a in processor.alerts) == batch_ids
    assert dict(sorted(
        Counter(a.driver_id for a in processor.alerts).items()
    )) == batch_counts
    # One delta generation per micro-batch on top of the base rebuild.
    assert processor.index.generation == len(source) + 1


def test_alert_identity_carries_across_splits(fresh_run, evolved):
    """Same alert => same id, snippet, companies — not just same count."""
    _, _, documents = evolved
    by_split = {}
    for n_batches in (1, 3):
        etap, _ = fresh_run()
        processor = StreamProcessor(etap, allowed_lateness=None)
        source = batches_of(documents, n_batches)
        processor.run(source, until_cycle=len(source))
        by_split[n_batches] = {
            a.alert_id: (a.snippet_id, a.companies, round(a.score, 9))
            for a in processor.alerts
        }
    assert by_split[1] == by_split[3]


class TestGoldenPin:
    def test_stream_section_equals_batch_alerts(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert "stream" in golden, (
            "golden file predates the streaming section — regenerate: "
            "PYTHONPATH=src python tests/golden/regen.py"
        )
        assert golden["stream"]["alert_ids"] == golden["alert_ids"]
        assert sum(
            golden["stream"]["per_driver_counts"].values()
        ) == len(golden["alert_ids"])

    def test_live_stream_snapshot_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        current = stream_snapshot()
        assert current == golden["stream"], (
            "streamed golden output drifted from the snapshot. If "
            "intentional, regenerate with `PYTHONPATH=src python "
            "tests/golden/regen.py` and commit the diff."
        )
