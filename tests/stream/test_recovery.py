"""Crash-recovery fuzz: kill after every WAL record, resume, compare.

The recovery contract (docs/STREAMING.md): a process killed after *any*
durable WAL record, when resumed against a deterministically rebuilt
base pipeline, must converge to exactly the state of an uninterrupted
run — same alerts in the same order, same idempotency keys, same index
generation, same watermark, same document store.  Zero duplicates,
zero holes.

``test_kill_after_every_wal_record`` is exhaustive: the reference run
counts its WAL records, then every position 1..N is killed against and
resumed.  The hypothesis test layers multiple crashes in one lifetime
chain (crash during recovery replay included).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream import (
    CheckpointStore,
    EvolvingWebStream,
    SimulatedCrash,
    StreamProcessor,
    WriteAheadLog,
)

from tests.stream.conftest import evolve_config

CYCLES = 3
DOCS_PER_CYCLE = 6


def _source(web) -> EvolvingWebStream:
    return EvolvingWebStream(
        web, config=evolve_config(), docs_per_cycle=DOCS_PER_CYCLE
    )


def _final_state(processor: StreamProcessor) -> tuple:
    """Everything the recovery contract pins, as one comparable value."""
    return (
        tuple(
            (a.alert_id, a.cycle, a.driver_id, a.doc_id, a.snippet_id,
             round(a.score, 9))
            for a in processor.alerts
        ),
        tuple(sorted(processor.emitted_keys)),
        processor.index.generation,
        processor.watermark,
        tuple(sorted(processor.etap.store.doc_ids())),
    )


def _run_lifetimes(factory, root, kills: list[int | None]) -> tuple:
    """Run the scenario as a chain of process lifetimes.

    Each entry in ``kills`` is one lifetime's ``kill_after`` (None =
    run to completion).  Every lifetime after the first resumes from
    the WAL + checkpoints the previous one left behind, with a freshly
    rebuilt base pipeline — exactly what a restarted process does.
    Returns the final state; intermediate lifetimes must crash.
    """
    wal_path = root / "wal.jsonl"
    checkpoints = CheckpointStore(root / "checkpoints")
    for i, kill_after in enumerate(kills):
        etap, web = factory()
        source = _source(web)
        wal = WriteAheadLog(wal_path, kill_after=kill_after)
        try:
            # The crash hook can fire anywhere a WAL record is
            # appended — including inside resume() itself (the
            # ``stream_resumed`` record); the chain must tolerate that
            # like any other kill position.
            if i == 0:
                processor = StreamProcessor(
                    etap, wal=wal, checkpoints=checkpoints
                )
            else:
                processor, info = StreamProcessor.resume(
                    etap, wal, checkpoints
                )
                source.seek(info.cycle)
            processor.run(source, until_cycle=CYCLES)
        except SimulatedCrash:
            wal.close()
            assert i < len(kills) - 1, (
                "the final lifetime must complete"
            )
            continue
        # A lifetime may finish before exhausting its kill budget (a
        # resume has less work left than the original run); its state
        # is then final.
        processor.close()
        return _final_state(processor)
    raise AssertionError("unreachable")


@pytest.fixture(scope="module")
def reference(fresh_run, tmp_path_factory):
    """Uninterrupted run: final state + total WAL record count."""
    root = tmp_path_factory.mktemp("stream-reference")
    etap, web = fresh_run()
    wal = WriteAheadLog(root / "wal.jsonl")
    processor = StreamProcessor(
        etap, wal=wal, checkpoints=CheckpointStore(root / "checkpoints")
    )
    processor.run(_source(web), until_cycle=CYCLES)
    state = _final_state(processor)
    n_records = wal.records_written
    processor.close()
    assert state[0], "reference run minted no alerts (vacuous fuzz)"
    assert n_records >= CYCLES * 3  # begin+commit+checkpoint per cycle
    return state, n_records


def test_kill_after_every_wal_record(fresh_run, reference, tmp_path):
    ref_state, n_records = reference
    failures = []
    for kill in range(1, n_records + 1):
        state = _run_lifetimes(
            fresh_run, tmp_path / f"kill-{kill}", [kill, None]
        )
        if state != ref_state:
            failures.append(kill)
    assert not failures, (
        f"recovery diverged for kill positions {failures} "
        f"of {n_records}"
    )


def test_kill_beyond_final_record_never_crashes(
    fresh_run, reference, tmp_path
):
    ref_state, n_records = reference
    state = _run_lifetimes(fresh_run, tmp_path, [None])
    assert state == ref_state
    # And a kill budget the run never reaches behaves like no kill.
    state = _run_lifetimes(
        fresh_run, tmp_path / "late-kill", [n_records + 100]
    )


def test_resume_after_clean_completion_is_idempotent(
    fresh_run, reference, tmp_path
):
    """Resuming a finished stream re-adds nothing and re-emits nothing."""
    ref_state, _ = reference
    state = _run_lifetimes(fresh_run, tmp_path, [None])
    assert state == ref_state
    etap, web = fresh_run()
    source = _source(web)
    processor, info = StreamProcessor.resume(
        etap,
        WriteAheadLog(tmp_path / "wal.jsonl"),
        CheckpointStore(tmp_path / "checkpoints"),
    )
    assert info.cycle == CYCLES
    source.seek(info.cycle)
    processor.run(source, until_cycle=CYCLES)  # zero batches remain
    assert _final_state(processor) == ref_state
    processor.close()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_multi_crash_chains_converge(
    data, fresh_run, reference, tmp_path_factory
):
    """Any chain of crashes — including crashes during recovery replay —
    still converges to the uninterrupted state."""
    ref_state, n_records = reference
    n_crashes = data.draw(st.integers(1, 3), label="n_crashes")
    kills = [
        data.draw(st.integers(1, n_records), label=f"kill_{i}")
        for i in range(n_crashes)
    ]
    root = tmp_path_factory.mktemp("multi-crash")
    state = _run_lifetimes(fresh_run, root, [*kills, None])
    assert state == ref_state


def test_recovered_flags_mark_exactly_the_durably_emitted_tail(
    fresh_run, reference, tmp_path
):
    """Alerts re-derived during replay are flagged, never re-delivered.

    Crash mid-stream, note which alert keys the WAL already holds, then
    resume: every alert whose key was durable before the crash must
    carry ``recovered=True`` and every genuinely new alert must not.
    """
    _, n_records = reference
    wal_path = tmp_path / "wal.jsonl"
    checkpoints = CheckpointStore(tmp_path / "checkpoints")
    etap, web = fresh_run()
    processor = StreamProcessor(
        etap,
        wal=WriteAheadLog(wal_path, kill_after=n_records // 2),
        checkpoints=checkpoints,
    )
    with pytest.raises(SimulatedCrash):
        processor.run(_source(web), until_cycle=CYCLES)
    processor.wal.close()
    durable_keys = {
        record.payload["alert_id"]
        for record in WriteAheadLog(wal_path).read()
        if record.event_type == "stream_alert"
    }

    etap2, web2 = fresh_run()
    source = _source(web2)
    resumed, info = StreamProcessor.resume(
        etap2, WriteAheadLog(wal_path), checkpoints
    )
    source.seek(info.cycle)
    resumed.run(source, until_cycle=CYCLES)
    assert {a.alert_id for a in resumed.alerts if a.recovered} == (
        info.recovered_alert_keys
    )
    assert info.recovered_alert_keys <= durable_keys
    for alert in resumed.alerts:
        if alert.alert_id in info.recovered_alert_keys:
            assert alert.recovered
    resumed.close()
