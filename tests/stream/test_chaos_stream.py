"""Chaos composition: the streaming path under lossy fault profiles.

Extends the PR-3 degradation invariant (tests/robustness/
test_chaos_matrix.py) to continuous ingestion, per cycle:

* under a lossy profile every cycle's alert set is a **subset** of the
  fault-free run's same-cycle alert set — dropped or corrupted pages
  may lose alerts but must never mint new ones;
* the stream never raises: faulted cycles complete and report their
  drops on the source;
* durability survives the faults — after every faulted cycle the
  latest checkpoint is loadable, and the faulted stream can be resumed
  and continued.
"""

from __future__ import annotations

import pytest

from repro.robustness.faults import FaultyWeb, get_profile
from repro.stream import (
    CheckpointStore,
    EvolvingWebStream,
    StreamProcessor,
    WriteAheadLog,
)

from tests.stream.conftest import evolve_config

CYCLES = 3
DOCS_PER_CYCLE = 10
FAULT_SEED = 5
LOSSY_PROFILES = ["lossy", "degraded"]


def _alert_keys(report) -> set[str]:
    return {alert.alert_id for alert in report.alerts}


@pytest.fixture(scope="module")
def healthy_cycles(fresh_run):
    """Per-cycle alert key sets of the fault-free stream."""
    etap, web = fresh_run()
    source = EvolvingWebStream(
        web, config=evolve_config(), docs_per_cycle=DOCS_PER_CYCLE
    )
    processor = StreamProcessor(etap)
    per_cycle = [
        _alert_keys(processor.process_batch(source.next_batch()))
        for _ in range(CYCLES)
    ]
    assert any(per_cycle), "healthy stream minted nothing (vacuous)"
    return per_cycle


@pytest.mark.chaos
@pytest.mark.parametrize("profile_name", LOSSY_PROFILES)
def test_lossy_stream_degrades_never_fabricates(
    fresh_run, healthy_cycles, tmp_path, profile_name
):
    profile = get_profile(profile_name)
    assert profile.lossy, "this suite is about lossy contracts"
    etap, web = fresh_run()
    faulty = FaultyWeb(web, profile, seed=FAULT_SEED)
    source = EvolvingWebStream(
        faulty, config=evolve_config(), docs_per_cycle=DOCS_PER_CYCLE
    )
    checkpoints = CheckpointStore(tmp_path / "checkpoints")
    processor = StreamProcessor(
        etap,
        wal=WriteAheadLog(tmp_path / "wal.jsonl"),
        checkpoints=checkpoints,
    )

    for cycle in range(1, CYCLES + 1):
        report = processor.process_batch(source.next_batch())  # no raise
        minted = _alert_keys(report)
        healthy = healthy_cycles[cycle - 1]
        assert minted <= healthy, (
            f"{profile_name} cycle {cycle}: lossy stream minted alerts "
            f"absent from the fault-free run: "
            f"{sorted(minted - healthy)[:5]}"
        )
        # Durability must survive the faulted cycle: the checkpoint
        # just written is loadable and current.
        latest = checkpoints.latest()
        assert latest is not None
        checkpoint_id, state = latest
        assert checkpoint_id == cycle
        assert state["cycle"] == cycle
    assert source.dropped + source.degraded > 0, (
        f"{profile_name} dropped nothing — the invariant was untested"
    )
    processor.close()

    # And the faulted stream is resumable: a fresh process restores the
    # final checkpoint and continues through another faulted cycle.
    etap2, web2 = fresh_run()
    faulty2 = FaultyWeb(web2, profile, seed=FAULT_SEED)
    source2 = EvolvingWebStream(
        faulty2, config=evolve_config(), docs_per_cycle=DOCS_PER_CYCLE
    )
    resumed, info = StreamProcessor.resume(
        etap2, WriteAheadLog(tmp_path / "wal.jsonl"), checkpoints
    )
    assert info.cycle == CYCLES
    assert sorted(resumed.emitted_keys) == sorted(processor.emitted_keys)
    source2.seek(info.cycle)
    resumed.process_batch(source2.next_batch())  # cycle 4: no raise
    assert resumed.cycle == CYCLES + 1
    resumed.close()


@pytest.mark.chaos
def test_transient_only_stream_is_lossless(fresh_run, healthy_cycles):
    """Retries must fully mask a transient-only profile, per cycle."""
    profile = get_profile("flaky")
    assert not profile.lossy
    etap, web = fresh_run()
    faulty = FaultyWeb(web, profile, seed=FAULT_SEED)
    source = EvolvingWebStream(
        faulty, config=evolve_config(), docs_per_cycle=DOCS_PER_CYCLE
    )
    processor = StreamProcessor(etap)
    for cycle in range(1, CYCLES + 1):
        report = processor.process_batch(source.next_batch())
        assert _alert_keys(report) == healthy_cycles[cycle - 1]
    assert source.dropped == 0 and source.degraded == 0
