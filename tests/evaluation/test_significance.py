"""Significance-testing utilities tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.significance import (
    bootstrap_f1_interval,
    mcnemar_test,
)
from repro.ml.metrics import precision_recall_f1


def make_predictions(seed=5, n=400, acc_a=0.9, acc_b=0.7):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    flip_a = rng.uniform(0, 1, n) > acc_a
    flip_b = rng.uniform(0, 1, n) > acc_b
    pred_a = np.where(flip_a, 1 - y, y)
    pred_b = np.where(flip_b, 1 - y, y)
    return y, pred_a, pred_b


class TestBootstrap:
    def test_interval_contains_point(self):
        y, pred, _ = make_predictions()
        interval = bootstrap_f1_interval(y, pred, n_resamples=300)
        assert interval.lower <= interval.point <= interval.upper

    def test_point_matches_direct_f1(self):
        y, pred, _ = make_predictions()
        interval = bootstrap_f1_interval(y, pred, n_resamples=100)
        assert interval.point == precision_recall_f1(y, pred).f1

    def test_wider_confidence_wider_interval(self):
        y, pred, _ = make_predictions()
        narrow = bootstrap_f1_interval(
            y, pred, confidence=0.8, n_resamples=500
        )
        wide = bootstrap_f1_interval(
            y, pred, confidence=0.99, n_resamples=500
        )
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_larger_sample_tighter_interval(self):
        y_small, pred_small, _ = make_predictions(n=60)
        y_large, pred_large, _ = make_predictions(n=2000)
        small = bootstrap_f1_interval(
            y_small, pred_small, n_resamples=400
        )
        large = bootstrap_f1_interval(
            y_large, pred_large, n_resamples=400
        )
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_deterministic_given_seed(self):
        y, pred, _ = make_predictions()
        a = bootstrap_f1_interval(y, pred, seed=1, n_resamples=200)
        b = bootstrap_f1_interval(y, pred, seed=1, n_resamples=200)
        assert a == b

    def test_contains_helper(self):
        y, pred, _ = make_predictions()
        interval = bootstrap_f1_interval(y, pred, n_resamples=200)
        assert interval.contains(interval.point)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_f1_interval([1], [1], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_f1_interval([], [])
        with pytest.raises(ValueError):
            bootstrap_f1_interval([1, 0], [1])


class TestMcNemar:
    def test_clearly_different_classifiers_significant(self):
        y, pred_a, pred_b = make_predictions(acc_a=0.95, acc_b=0.6)
        result = mcnemar_test(y, pred_a, pred_b)
        assert result.significant_at_05
        assert result.n_a_only_correct > result.n_b_only_correct

    def test_identical_classifiers_not_significant(self):
        y, pred_a, _ = make_predictions()
        result = mcnemar_test(y, pred_a, pred_a)
        assert result.p_value == 1.0
        assert not result.significant_at_05

    def test_equally_good_classifiers_not_significant(self):
        y, pred_a, pred_b = make_predictions(
            seed=9, acc_a=0.8, acc_b=0.8
        )
        result = mcnemar_test(y, pred_a, pred_b)
        assert result.p_value > 0.05

    def test_exact_binomial_path_for_few_discordant(self):
        y = np.array([1, 1, 1, 0, 0, 0, 1, 0])
        pred_a = y.copy()
        pred_b = y.copy()
        pred_b[0] = 0  # one discordant pair
        result = mcnemar_test(y, pred_a, pred_b)
        assert result.n_a_only_correct == 1
        assert 0 < result.p_value <= 1.0

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            mcnemar_test([1, 0], [1], [1, 0])
