"""Evaluation-dataset construction tests (section 5.1 setup)."""

from __future__ import annotations

import numpy as np

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.evaluation.datasets import DatasetSpec


class TestSpec:
    def test_default_matches_paper_counts(self):
        spec = DatasetSpec()
        assert spec.n_test_positive_ma == 72
        assert spec.n_test_positive_cim == 56
        assert spec.n_test_negative == 2265

    def test_small_profile_is_smaller(self):
        small = DatasetSpec.small()
        assert small.n_web_docs < DatasetSpec().n_web_docs
        assert small.n_test_negative < DatasetSpec().n_test_negative


class TestBuiltDataset:
    def test_counts_match_spec(self, small_dataset):
        spec = DatasetSpec.small()
        labels = small_dataset.test_labels
        assert labels[MERGERS_ACQUISITIONS].sum() == (
            spec.n_test_positive_ma
        )
        assert labels[CHANGE_IN_MANAGEMENT].sum() == (
            spec.n_test_positive_cim
        )
        assert labels[REVENUE_GROWTH].sum() == spec.n_test_positive_rg

    def test_common_test_pool(self, small_dataset):
        # All drivers share one test-item list (the paper's "common
        # test data").
        n = len(small_dataset.test_items)
        for labels in small_dataset.test_labels.values():
            assert labels.shape == (n,)

    def test_pure_positive_disjoint_from_test(self, small_dataset):
        for driver_id, pure in small_dataset.pure_positive.items():
            pure_ids = {item.snippet.snippet_id for item in pure}
            test_ids = {
                item.snippet.snippet_id
                for item in small_dataset.test_items
            }
            assert not pure_ids & test_ids

    def test_holdout_disjoint_from_store(self, small_dataset):
        store_ids = set(small_dataset.etap.store.doc_ids())
        for item in small_dataset.test_items:
            assert item.snippet.doc_id not in store_ids

    def test_positive_items_really_positive(self, small_dataset):
        for driver_id in small_dataset.test_labels:
            for item, label in zip(
                small_dataset.test_items,
                small_dataset.test_labels[driver_id],
            ):
                assert item.snippet.is_positive_for(driver_id) == bool(
                    label
                )

    def test_positives_helper(self, small_dataset):
        positives = small_dataset.positives(MERGERS_ACQUISITIONS)
        assert len(positives) == int(
            np.sum(small_dataset.test_labels[MERGERS_ACQUISITIONS])
        )

    def test_pure_positive_counts(self, small_dataset):
        spec = DatasetSpec.small()
        for pure in small_dataset.pure_positive.values():
            assert len(pure) == spec.n_pure_positive
