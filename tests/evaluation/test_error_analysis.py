"""Automated error-analysis tests (section 5.2, programmatically)."""

from __future__ import annotations

import pytest

from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
)
from repro.evaluation.error_analysis import (
    analyze_errors,
    classify_false_positive,
)
from repro.text.annotator import Annotator

_annotator = Annotator()
_n = 0


def item(text):
    global _n
    _n += 1
    return AnnotatedSnippet(
        snippet=Snippet(doc_id=f"e{_n}", index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )


class TestBuckets:
    def test_biography_is_historical(self):
        bucket = classify_false_positive(
            item("Mr. Andersen was the CEO of Acme Inc from 1980-1985.")
        )
        assert bucket == "historical"

    def test_retrospective_is_historical(self):
        bucket = classify_false_positive(
            item("Back in 1992, Acme Inc had acquired Globex Corp.")
        )
        assert bucket == "historical"

    def test_cross_driver_flag_wins(self):
        bucket = classify_false_positive(
            item("Acme Inc acquired Globex Corp today."),
            other_driver_labels=[1],
        )
        assert bucket == "cross_driver"

    def test_boilerplate(self):
        bucket = classify_false_positive(
            item("Shares of Acme Inc closed at $12 on Monday.")
        )
        assert bucket == "business_boilerplate"

    def test_other(self):
        bucket = classify_false_positive(
            item("A pleasant afternoon of gardening followed.")
        )
        assert bucket == "other"

    def test_current_marker_prevents_historical(self):
        # Announced today + an old founding year: not historical.
        bucket = classify_false_positive(
            item("Acme Inc, founded in 1980, announced results today.")
        )
        assert bucket != "historical"


class TestAnalyzeErrors:
    def test_counts_and_buckets(self):
        items = [
            item("Acme Inc named Mary Jones CEO today."),        # TP
            item("Mr. Smith was the CEO of Acme Inc from "
                 "1980-1985."),                                   # FP hist
            item("Shares of Globex Corp closed at $9 on Monday."),  # FP boil
            item("Initech Ltd promoted Ann Lee to CFO."),         # FN
            item("A guide to hiking trails."),                    # TN
        ]
        y_true = [1, 0, 0, 1, 0]
        y_pred = [1, 1, 1, 0, 0]
        report = analyze_errors(
            CHANGE_IN_MANAGEMENT, items, y_true, y_pred
        )
        assert report.n_true_positive == 1
        assert report.n_false_positive == 2
        assert report.n_false_negative == 1
        assert report.fp_buckets["historical"] == 1
        assert report.fp_buckets["business_boilerplate"] == 1
        assert "1980-1985" in report.fp_examples["historical"]

    def test_cross_driver_bucket_with_other_labels(self):
        items = [item("Acme Inc acquired Globex Corp on Monday.")]
        report = analyze_errors(
            CHANGE_IN_MANAGEMENT,
            items,
            y_true=[0],
            y_pred=[1],
            other_labels={MERGERS_ACQUISITIONS: [1]},
        )
        assert report.fp_buckets["cross_driver"] == 1

    def test_render(self):
        items = [
            item("Mr. Smith was the CEO of Acme Inc from 1980-1985."),
        ]
        report = analyze_errors(
            CHANGE_IN_MANAGEMENT, items, [0], [1]
        )
        text = report.render()
        assert "historical" in text
        assert "FP=1" in text

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            analyze_errors("d", [], [0], [0])

    def test_dominant_bucket(self):
        items = [
            item("Mr. A was the CEO of Acme Inc from 1980-1985."),
            item("Ms. B served as CFO of Globex Corp between 1990 "
                 "and 1995."),
            item("Shares of Initech Ltd closed at $4 on Friday."),
        ]
        report = analyze_errors("d", items, [0, 0, 0], [1, 1, 1])
        assert report.dominant_fp_bucket == "historical"

    def test_no_errors(self):
        items = [item("Acme Inc named Mary Jones CEO today.")]
        report = analyze_errors("d", items, [1], [1])
        assert report.dominant_fp_bucket is None


class TestEndToEnd:
    def test_cim_false_positives_are_explained_by_buckets(
        self, small_dataset, trained_etap
    ):
        """Section 5.2's diagnosis, automated: the named failure modes
        (historical text, cross-driver triggers, boilerplate) account
        for nearly all change-in-management false positives — few land
        in the unexplained 'other' bucket."""
        predictions = trained_etap.classifiers[
            CHANGE_IN_MANAGEMENT
        ].predict(small_dataset.test_items)
        report = analyze_errors(
            CHANGE_IN_MANAGEMENT,
            small_dataset.test_items,
            small_dataset.test_labels[CHANGE_IN_MANAGEMENT],
            predictions,
            other_labels={
                driver: labels
                for driver, labels in small_dataset.test_labels.items()
                if driver != CHANGE_IN_MANAGEMENT
            },
        )
        if report.n_false_positive == 0:
            pytest.skip("no false positives in this sample")
        unexplained = report.fp_buckets.get("other", 0)
        assert unexplained / report.n_false_positive <= 0.3
