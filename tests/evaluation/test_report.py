"""Reproduction-report generator tests."""

from __future__ import annotations

from repro.evaluation.report import generate_report, write_report


class TestGenerateReport:
    def test_all_sections_present(self, small_dataset):
        report = generate_report(dataset=small_dataset)
        for marker in (
            "Table 1", "Figures 3-4", "Figures 5-6", "Figure 7",
            "Figure 8", "Equation 2",
        ):
            assert marker in report, marker

    def test_paper_reference_numbers_included(self, small_dataset):
        report = generate_report(dataset=small_dataset)
        assert "0.773" in report  # paper M&A F1
        assert "0.715" in report  # paper CiM F1

    def test_corpus_summary_line(self, small_dataset):
        report = generate_report(dataset=small_dataset)
        assert f"{len(small_dataset.etap.store)} documents" in report

    def test_markdown_structure(self, small_dataset):
        report = generate_report(dataset=small_dataset)
        assert report.startswith("# ETAP reproduction report")
        assert report.count("\n## ") == 6


class TestWriteReport:
    def test_writes_file(self, small_dataset, tmp_path):
        path = write_report(
            tmp_path / "report.md", dataset=small_dataset
        )
        assert path.exists()
        assert "Table 1" in path.read_text(encoding="utf-8")
