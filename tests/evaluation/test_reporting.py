"""ASCII reporting tests."""

from __future__ import annotations

from repro.evaluation.reporting import (
    ascii_table,
    format_float,
    log_bar_chart,
)


class TestAsciiTable:
    def test_header_and_rows_present(self):
        table = ascii_table(["A", "B"], [["one", 2], ["three", 4]])
        lines = table.splitlines()
        assert "A" in lines[0] and "B" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "three" in table

    def test_columns_aligned(self):
        table = ascii_table(["Col"], [["x"], ["longer"]])
        lines = table.splitlines()
        assert len({line.index("|") if "|" in line else -1
                    for line in lines if "|" in line}) <= 1

    def test_empty_rows(self):
        table = ascii_table(["A"], [])
        assert "A" in table


class TestLogBarChart:
    def test_bars_scale_with_magnitude(self):
        chart = log_bar_chart(
            ["cat"], {"PA": [0.5], "IV": [0.0005]}, width=20
        )
        lines = [line for line in chart.splitlines() if "|" in line]
        pa_bar = lines[0].count("#")
        iv_bar = lines[1].count("#")
        assert pa_bar > iv_bar

    def test_empty_series(self):
        assert log_bar_chart([], {}) == ""

    def test_every_label_appears(self):
        chart = log_bar_chart(
            ["ORG", "vb"], {"PA": [0.1, 0.2], "IV": [0.3, 0.4]}
        )
        assert "ORG" in chart and "vb" in chart

    def test_zero_values_use_floor(self):
        chart = log_bar_chart(["x"], {"PA": [0.0]})
        assert "log10=" in chart


class TestFormatFloat:
    def test_default_three_digits(self):
        assert format_float(0.7736) == "0.774"

    def test_custom_digits(self):
        assert format_float(0.5, 1) == "0.5"
