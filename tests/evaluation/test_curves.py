"""PR-curve tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.curves import (
    best_operating_point,
    precision_recall_curve,
    render_curve,
)

Y_TRUE = [1, 1, 1, 0, 0, 0, 0, 0]
SCORES = [0.9, 0.8, 0.4, 0.6, 0.3, 0.2, 0.1, 0.05]


class TestCurve:
    def test_explicit_thresholds(self):
        points = precision_recall_curve(
            Y_TRUE, SCORES, thresholds=[0.0, 0.5, 0.85]
        )
        assert [p.threshold for p in points] == [0.0, 0.5, 0.85]
        # Threshold 0 -> everything positive: recall 1, precision 3/8.
        assert points[0].recall == 1.0
        assert points[0].precision == pytest.approx(3 / 8)
        # Threshold 0.85 -> only the 0.9 hit: precision 1, recall 1/3.
        assert points[2].precision == 1.0
        assert points[2].recall == pytest.approx(1 / 3)

    def test_recall_never_increases_with_threshold(self):
        points = precision_recall_curve(
            Y_TRUE, SCORES, thresholds=sorted(set(SCORES))
        )
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_default_thresholds_include_half(self):
        points = precision_recall_curve(Y_TRUE, SCORES)
        assert any(p.threshold == 0.5 for p in points)

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            precision_recall_curve([1, 0], [0.5])


class TestBestOperatingPoint:
    def test_picks_max_f1(self):
        points = precision_recall_curve(
            Y_TRUE, SCORES, thresholds=[0.0, 0.35, 0.7]
        )
        best = best_operating_point(points)
        assert best.f1 == max(p.f1 for p in points)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_operating_point([])


class TestRender:
    def test_render_contains_all_points(self):
        points = precision_recall_curve(
            Y_TRUE, SCORES, thresholds=[0.1, 0.5]
        )
        text = render_curve(points)
        assert text.count("|") == 2
        assert "0.500" in text


@given(st.lists(
    st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
    min_size=2, max_size=50,
))
def test_curve_points_bounded(pairs):
    y_true = [a for a, _ in pairs]
    scores = [b for _, b in pairs]
    for point in precision_recall_curve(y_true, scores):
        assert 0 <= point.precision <= 1
        assert 0 <= point.recall <= 1
        assert 0 <= point.f1 <= 1
