"""Experiment-runner tests: every table/figure regenerates with the
paper's qualitative shape (run on the small profile for speed)."""

from __future__ import annotations

import pytest

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.evaluation.experiments import (
    PAPER_TABLE1,
    run_company_ranking,
    run_figure3,
    run_figure4,
    run_figure5_6,
    run_figure7,
    run_figure8,
    run_table1,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return run_table1(
            dataset=small_dataset,
            drivers=(
                MERGERS_ACQUISITIONS,
                CHANGE_IN_MANAGEMENT,
                REVENUE_GROWTH,
            ),
        )

    def test_paper_reference_values(self):
        assert PAPER_TABLE1[MERGERS_ACQUISITIONS].f1 == 0.773
        assert PAPER_TABLE1[CHANGE_IN_MANAGEMENT].f1 == 0.715

    def test_f1_beats_trivial_baselines(self, result, small_dataset):
        # Predict-all-positive baseline F1 per driver.
        for row in result.rows:
            labels = small_dataset.test_labels[row.driver_id]
            all_pos_precision = labels.mean()
            baseline_f1 = (
                2 * all_pos_precision / (1 + all_pos_precision)
            )
            assert row.f1 > baseline_f1 + 0.2, row.driver_id

    def test_render_includes_paper_column(self, result):
        rendered = result.render()
        assert "Paper F1" in rendered
        assert "0.773" in rendered

    def test_f1_lookup(self, result):
        assert 0 <= result.f1_of(MERGERS_ACQUISITIONS) <= 1
        with pytest.raises(KeyError):
            result.f1_of("nope")

    def test_reasonable_precision_and_recall(self, result):
        for row in result.rows:
            assert row.precision >= 0.4, row.driver_id
            assert row.recall >= 0.6, row.driver_id


class TestRigFigures:
    @pytest.fixture(scope="class")
    def fig3(self, small_dataset):
        return run_figure3(dataset=small_dataset)

    @pytest.fixture(scope="class")
    def fig4(self, small_dataset):
        return run_figure4(dataset=small_dataset)

    @pytest.mark.parametrize("category", ["vb", "nn"])
    def test_open_class_pos_prefers_instances(self, fig3, fig4, category):
        # The paper's observation 1: open-class words should NOT be
        # abstracted.  (jj/rb are too sparse for the small profile; the
        # full-scale benches cover them.)
        for figure in (fig3, fig4):
            comparison = figure.comparison(category)
            assert not comparison.prefer_abstraction, (
                figure.driver_id, category,
            )

    @pytest.mark.parametrize("category", ["PRSN", "PLC"])
    def test_entities_prefer_abstraction(self, fig3, fig4, category):
        # The paper's observation 2: entity categories should be
        # abstracted.  ORG needs the full-scale corpus to stabilize
        # (asserted in benchmarks/bench_fig3/4); PRSN and PLC are robust
        # even on the small profile.
        for figure in (fig3, fig4):
            assert figure.comparison(category).prefer_abstraction, (
                figure.driver_id, category,
            )

    def test_rig_values_bounded(self, fig3):
        for comparison in fig3.comparisons:
            assert 0 <= comparison.rig_pa <= 1
            assert 0 <= comparison.rig_iv <= 1

    def test_render_shows_chart_and_table(self, fig3):
        rendered = fig3.render()
        assert "RIG(PA)" in rendered
        assert "log10=" in rendered


class TestFigure56:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return run_figure5_6(dataset=small_dataset)

    def test_query_yields_both_kinds(self, result):
        # Figure 5: trigger snippets exist; Figure 6: noise coexists.
        assert result.kept_snippets
        assert result.rejected_snippets

    def test_kept_snippets_look_like_triggers(self, result):
        mentions = sum(
            "new" in text.lower() or "ceo" in text.lower()
            for text in result.kept_snippets
        )
        assert mentions / len(result.kept_snippets) >= 0.5

    def test_render(self, result):
        rendered = result.render(limit=2)
        assert "Figure 5" in rendered and "Figure 6" in rendered


class TestRankedOutput:
    def test_figure7_ranked_by_score(self, small_dataset):
        result = run_figure7(dataset=small_dataset)
        assert result.driver_id == CHANGE_IN_MANAGEMENT
        scores = [e.score for e in result.events]
        assert scores == sorted(scores, reverse=True)
        assert result.render(limit=3)

    def test_figure8_ranked_by_orientation(self, small_dataset):
        result = run_figure8(dataset=small_dataset)
        assert result.driver_id == REVENUE_GROWTH
        magnitudes = [abs(e.score) for e in result.events]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestCompanyRanking:
    def test_report_generated(self, small_dataset):
        result = run_company_ranking(dataset=small_dataset)
        assert result.scores
        rendered = result.render(limit=3)
        assert "MRR" in rendered
