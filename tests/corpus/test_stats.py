"""Corpus-statistics tests: the design claims, measured."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.stats import compute_stats, render_stats


@pytest.fixture(scope="module")
def stats():
    generator = CorpusGenerator(CorpusConfig(seed=17))
    return compute_stats(generator.generate(1500))


class TestComputeStats:
    def test_counts(self, stats):
        assert stats.n_documents == 1500
        assert stats.n_sentences > stats.n_documents * 5

    def test_trigger_documents_are_minority(self, stats):
        # The default mix puts trigger docs around 21%.
        assert 0.10 <= stats.trigger_document_fraction <= 0.35

    def test_trigger_docs_contain_noise(self, stats):
        # Figure 6, quantified: a large share of sentences inside
        # trigger documents are not trigger sentences.
        assert 0.3 <= stats.noise_fraction_in_trigger_docs <= 0.9

    def test_mentions_are_head_heavy(self, stats):
        # The Zipfian design claim behind Figures 3/4: a small set of
        # companies dominates mentions.
        n_companies = len(stats.company_mention_counts)
        assert n_companies > 100
        assert stats.mention_share_of_top(10) >= 0.25

    def test_doc_type_counts_sum(self, stats):
        assert sum(stats.doc_type_counts.values()) == stats.n_documents

    def test_empty_corpus(self):
        empty = compute_stats([])
        assert empty.trigger_document_fraction == 0.0
        assert empty.mention_share_of_top() == 0.0
        assert empty.noise_fraction_in_trigger_docs == 0.0


class TestRender:
    def test_render_mentions_key_figures(self, stats):
        text = render_stats(stats)
        assert "documents:" in text
        assert "top-10 companies" in text
        assert "ma_news" in text
