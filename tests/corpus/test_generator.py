"""Document generator tests: structure, labels, mix, determinism."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.corpus.generator import (
    DOC_TYPES,
    TRIGGER_DOC_TYPES,
    CorpusConfig,
    CorpusGenerator,
    driver_for_doc_type,
)
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)


@pytest.fixture
def generator():
    return CorpusGenerator(CorpusConfig(seed=3))


class TestSingleDocuments:
    def test_unknown_type_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate_document("tabloid")

    @pytest.mark.parametrize("doc_type", DOC_TYPES)
    def test_every_type_generates(self, generator, doc_type):
        document = generator.generate_document(doc_type)
        assert document.doc_type == doc_type
        assert len(document.sentences) >= 6 or doc_type in (
            "retrospective", "product_review",
        )
        assert document.title
        assert document.url.startswith("http://")

    def test_doc_ids_unique_and_sequential(self, generator):
        ids = [
            generator.generate_document("background").doc_id
            for _ in range(5)
        ]
        assert len(set(ids)) == 5

    def test_trigger_doc_has_matching_label(self, generator):
        for doc_type, driver in [
            ("ma_news", MERGERS_ACQUISITIONS),
            ("cim_news", CHANGE_IN_MANAGEMENT),
            ("rg_news", REVENUE_GROWTH),
        ]:
            document = generator.generate_document(doc_type)
            assert driver in document.driver_labels()

    def test_lead_sentence_is_trigger(self, generator):
        # Inverted pyramid: the first sentence of a news article reports
        # the event.
        for doc_type in TRIGGER_DOC_TYPES:
            document = generator.generate_document(doc_type)
            assert document.sentences[0].label is not None

    def test_trigger_docs_contain_noise_sentences(self, generator):
        # Figure 6: relevant pages still contain non-trigger sentences.
        noisy = 0
        for _ in range(10):
            document = generator.generate_document("ma_news")
            noisy += any(s.label is None for s in document.sentences)
        assert noisy >= 8

    def test_biography_has_no_trigger_labels(self, generator):
        document = generator.generate_document("biography")
        assert document.driver_labels() == set()

    def test_background_has_no_companies(self, generator):
        document = generator.generate_document("background")
        assert document.companies == ()

    def test_news_docs_carry_companies(self, generator):
        document = generator.generate_document("ma_news")
        assert len(document.companies) == 2

    def test_text_joins_sentences(self, generator):
        document = generator.generate_document("cim_news")
        for sentence in document.sentences:
            assert sentence.text in document.text


class TestBatchGeneration:
    def test_mix_roughly_respected(self):
        generator = CorpusGenerator(CorpusConfig(seed=5))
        documents = generator.generate(2000)
        counts = Counter(d.doc_type for d in documents)
        mix = CorpusConfig().mix
        for doc_type, weight in mix.items():
            observed = counts[doc_type] / len(documents)
            assert abs(observed - weight) < 0.05, doc_type

    def test_deterministic_given_seed(self):
        a = CorpusGenerator(CorpusConfig(seed=9)).generate(30)
        b = CorpusGenerator(CorpusConfig(seed=9)).generate(30)
        assert [d.text for d in a] == [d.text for d in b]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(CorpusConfig(seed=9)).generate(30)
        b = CorpusGenerator(CorpusConfig(seed=10)).generate(30)
        assert [d.text for d in a] != [d.text for d in b]


class TestStartId:
    """The doc-id namespace offset (collision guard for evolvers)."""

    def test_default_counts_from_zero(self):
        first = CorpusGenerator(CorpusConfig(seed=9)).generate(1)[0]
        assert first.doc_id == "doc-000001"

    def test_offset_generator_counts_from_start_id(self):
        generator = CorpusGenerator(
            CorpusConfig(seed=9), start_id=1_000_000
        )
        ids = [d.doc_id for d in generator.generate(3)]
        assert ids == ["doc-1000001", "doc-1000002", "doc-1000003"]

    def test_namespaces_stay_disjoint_past_a_million_docs(self):
        """Two generators sharing a corpus never collide as long as
        the base stays under the offset — checked by id arithmetic, so
        the guard holds for counts no test could afford to generate."""
        base = CorpusGenerator(CorpusConfig(seed=9))
        offset = CorpusGenerator(
            CorpusConfig(seed=9), start_id=1_000_000
        )
        base_ids = {d.doc_id for d in base.generate(60)}
        offset_ids = {d.doc_id for d in offset.generate(60)}
        assert not base_ids & offset_ids
        # The numeric ranges themselves cannot meet: the base counter
        # after N docs is exactly N, the offset counter 1_000_000 + N.
        assert max(
            int(i.split("-")[1]) for i in base_ids
        ) == 60
        assert min(
            int(i.split("-")[1]) for i in offset_ids
        ) == 1_000_001

    def test_negative_start_id_rejected(self):
        with pytest.raises(ValueError, match="start_id"):
            CorpusGenerator(CorpusConfig(seed=9), start_id=-1)

    def test_offset_does_not_change_content(self):
        """start_id shifts only identity, never the generated text."""
        plain = CorpusGenerator(CorpusConfig(seed=9)).generate(10)
        shifted = CorpusGenerator(
            CorpusConfig(seed=9), start_id=1_000_000
        ).generate(10)
        assert [d.text for d in plain] == [d.text for d in shifted]
        assert [d.title for d in plain] == [d.title for d in shifted]


class TestDriverForDocType:
    def test_trigger_types_map(self):
        assert driver_for_doc_type("ma_news") == MERGERS_ACQUISITIONS
        assert driver_for_doc_type("cim_news") == CHANGE_IN_MANAGEMENT
        assert driver_for_doc_type("rg_news") == REVENUE_GROWTH

    def test_non_trigger_types_map_to_none(self):
        assert driver_for_doc_type("background") is None
        assert driver_for_doc_type("biography") is None
