"""Template tests: labels, surface variety, entity coherence."""

from __future__ import annotations

import random

import pytest

from repro.corpus import templates
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
    EntityPool,
)


@pytest.fixture
def rng():
    return random.Random(42)


@pytest.fixture
def pool(rng):
    return EntityPool(rng)


class TestEntityPool:
    def test_companies_are_distinct(self, pool):
        assert pool.company != pool.other_company

    def test_person_last_matches_person(self, pool):
        assert pool.person.endswith(pool.person_last)

    def test_amount_format(self, pool):
        amount = pool.amount()
        assert amount.startswith("$")
        assert amount.endswith(("million", "billion"))

    def test_percent_format(self, pool):
        assert pool.percent().endswith("%")

    def test_year_range(self, pool):
        assert 2002 <= pool.year() <= 2006
        assert 1975 <= pool.old_year() <= 1999


class TestTriggerLabels:
    def test_ma_trigger_labeled(self, pool, rng):
        sentence = templates.ma_trigger(pool, rng)
        assert sentence.label == MERGERS_ACQUISITIONS

    def test_cim_trigger_labeled(self, pool, rng):
        sentence = templates.cim_trigger(pool, rng)
        assert sentence.label == CHANGE_IN_MANAGEMENT

    def test_rg_trigger_labeled(self, pool, rng):
        sentence = templates.rg_trigger(pool, rng)
        assert sentence.label == REVENUE_GROWTH

    def test_noise_unlabeled(self, pool, rng):
        assert templates.business_noise(pool, rng).label is None
        assert templates.background_sentence(rng).label is None
        assert templates.biography_sentence(pool, rng).label is None
        assert templates.ma_retrospective(pool, rng).label is None
        assert templates.product_review_sentence(pool, rng).label is None


class TestContent:
    def test_ma_trigger_mentions_both_companies(self, rng):
        pool = EntityPool(rng)
        seen_both = 0
        for _ in range(30):
            text = templates.ma_trigger(pool, rng).text
            if pool.company in text and pool.other_company in text:
                seen_both += 1
        assert seen_both >= 20  # most forms name acquirer and target

    def test_cim_trigger_mentions_designation(self, rng):
        pool = EntityPool(rng)
        hits = sum(
            pool.designation in templates.cim_trigger(pool, rng).text
            for _ in range(30)
        )
        assert hits >= 25

    def test_rg_trigger_has_figure(self, rng):
        pool = EntityPool(rng)
        for _ in range(20):
            text = templates.rg_trigger(pool, rng).text
            assert "%" in text or "$" in text

    def test_biography_mentions_past_years(self, rng):
        pool = EntityPool(rng)
        texts = [
            templates.biography_sentence(pool, rng).text
            for _ in range(40)
        ]
        with_year = [t for t in texts if any(
            str(y) in t for y in range(1975, 2009)
        )]
        assert len(with_year) >= 20

    def test_surface_variety(self, rng):
        pool = EntityPool(rng)
        texts = {templates.ma_trigger(pool, rng).text for _ in range(60)}
        assert len(texts) >= 8  # several distinct surface forms

    def test_sentences_end_with_period(self, rng):
        pool = EntityPool(rng)
        for factory in (
            templates.ma_trigger, templates.cim_trigger,
            templates.rg_trigger, templates.business_noise,
            templates.biography_sentence, templates.ma_retrospective,
            templates.product_review_sentence,
        ):
            assert factory(pool, rng).text.endswith(".")


class TestDeterminism:
    def test_same_seed_same_sentences(self):
        def render(seed):
            rng = random.Random(seed)
            pool = EntityPool(rng)
            return [templates.cim_trigger(pool, rng).text
                    for _ in range(10)]

        assert render(7) == render(7)
        assert render(7) != render(8)
