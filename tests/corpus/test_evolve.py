"""Direct WebEvolver tests (alert-loop integration lives in
tests/core/test_alerts.py)."""

from __future__ import annotations

import pytest

from repro.corpus.evolve import LATEST_HUB_URL, WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import FRONT_PAGE_URL, build_web


@pytest.fixture
def evolver():
    web = build_web(60, CorpusConfig(seed=41))
    return WebEvolver(web, CorpusConfig(seed=42))


class TestAdvance:
    def test_cycle_counter(self, evolver):
        assert evolver.cycle == 0
        evolver.advance(3)
        assert evolver.cycle == 1
        evolver.advance(3)
        assert evolver.cycle == 2

    def test_pages_fetchable(self, evolver):
        for document in evolver.advance(5):
            page = evolver.web.fetch(document.url)
            assert page.document is document

    def test_hub_accumulates_across_cycles(self, evolver):
        first = evolver.advance(4)
        second = evolver.advance(4)
        hub = evolver.web.fetch(LATEST_HUB_URL)
        for document in first + second:
            assert document.url in hub.links

    def test_hub_link_cap(self, evolver):
        for _ in range(12):
            evolver.advance(50)
        hub = evolver.web.fetch(LATEST_HUB_URL)
        assert len(hub.links) <= 500

    def test_front_page_gains_hub_link_once(self, evolver):
        evolver.advance(2)
        evolver.advance(2)
        front = evolver.web.fetch(FRONT_PAGE_URL)
        assert front.links.count(LATEST_HUB_URL) == 1

    def test_graph_updated_for_new_pages(self, evolver):
        documents = evolver.advance(3)
        for document in documents:
            assert evolver.web.graph.has_edge(
                LATEST_HUB_URL, document.url
            )

    def test_doc_id_namespace_disjoint_from_initial(self, evolver):
        initial_ids = {d.doc_id for d in evolver.web.documents}
        fresh = evolver.advance(5)
        # The evolver's generator starts counting at 1,000,000.
        for document in fresh:
            assert int(document.doc_id.split("-")[1]) >= 1_000_000
        assert not {d.doc_id for d in fresh} & initial_ids

    def test_start_id_is_a_public_parameter(self):
        """The namespace offset is plumbed through the constructor —
        no more reaching into the generator's private counter."""
        web = build_web(40, CorpusConfig(seed=41))
        evolver = WebEvolver(
            web, CorpusConfig(seed=42), start_id=5_000_000
        )
        for document in evolver.advance(4):
            assert int(document.doc_id.split("-")[1]) >= 5_000_000

    def test_default_start_id_matches_module_constant(self):
        from repro.corpus.evolve import EVOLVED_START_ID

        assert EVOLVED_START_ID == 1_000_000
        web = build_web(40, CorpusConfig(seed=41))
        first = WebEvolver(web, CorpusConfig(seed=42)).advance(1)[0]
        assert first.doc_id == f"doc-{EVOLVED_START_ID + 1}"
