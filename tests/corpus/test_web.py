"""Synthetic web tests: pages, links, graph, fetching."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.corpus.web import FRONT_PAGE_URL, build_web


class TestStructure:
    def test_front_page_exists(self, small_web):
        page = small_web.fetch(FRONT_PAGE_URL)
        assert page.is_hub
        assert page.links  # links to every site hub

    def test_every_document_has_a_page(self, small_web):
        for document in small_web.documents:
            page = small_web.fetch(document.url)
            assert page.text == document.text

    def test_hub_pages_link_to_articles(self, small_web):
        front = small_web.fetch(FRONT_PAGE_URL)
        hub = small_web.fetch(front.links[0])
        assert hub.is_hub
        assert all(small_web.has(link) for link in hub.links)

    def test_page_count_exceeds_documents(self, small_web):
        # Hubs + front page on top of the article pages.
        assert len(small_web) > len(small_web.documents)

    def test_404_raises(self, small_web):
        with pytest.raises(KeyError):
            small_web.fetch("http://nowhere.example.com/x.html")

    def test_has(self, small_web):
        assert small_web.has(FRONT_PAGE_URL)
        assert not small_web.has("http://nowhere.example.com/x.html")


class TestGraph:
    def test_graph_nodes_match_pages(self, small_web):
        assert set(small_web.graph.nodes) == set(small_web.urls)

    def test_all_articles_reachable_from_front_page(self, small_web):
        reachable = nx.descendants(small_web.graph, FRONT_PAGE_URL)
        for document in small_web.documents:
            assert document.url in reachable

    def test_links_mirror_edges(self, small_web):
        for url in small_web.urls:
            page = small_web.fetch(url)
            for link in page.links:
                assert small_web.graph.has_edge(url, link)

    def test_related_links_share_a_company(self, small_web):
        for document in small_web.documents[:50]:
            page = small_web.fetch(document.url)
            for link in page.links:
                target = small_web.fetch(link)
                if target.document is None:
                    continue
                shared = set(document.companies) & set(
                    target.document.companies
                )
                assert shared


class TestDeterminism:
    def test_same_size_same_web(self):
        a = build_web(100)
        b = build_web(100)
        assert a.urls == b.urls
        assert a.fetch(a.urls[0]).text == b.fetch(b.urls[0]).text
