"""HTML serving/extraction roundtrip tests."""

from __future__ import annotations

import pytest

from repro.corpus.html import extract_body_text, extract_text, page_html
from repro.corpus.web import Page, build_web


def make_page(text, title="Headline", links=()):
    return Page(url="http://x", title=title, text=text, links=links)


class TestPageHtml:
    def test_contains_escaped_body(self):
        page = make_page("Smith & Jones <rose>.")
        rendered = page_html(page)
        assert "Smith &amp; Jones &lt;rose&gt;." in rendered

    def test_has_document_structure(self):
        rendered = page_html(make_page("Body."))
        for marker in ("<!DOCTYPE html>", "<head>", "<nav>", "<footer>"):
            assert marker in rendered

    def test_links_rendered_in_nav(self):
        page = make_page("Body.", links=("http://a", "http://b"))
        rendered = page_html(page)
        assert 'href="http://a"' in rendered


class TestExtractText:
    def test_roundtrip_recovers_title_and_text(self):
        page = make_page("Acme Inc acquired Globex Corp. Deal done.")
        extracted = extract_text(page_html(page))
        assert extracted.splitlines()[0] == "Headline"
        assert "Acme Inc acquired Globex Corp. Deal done." in extracted

    def test_body_roundtrip_exact(self):
        page = make_page("Acme Inc acquired Globex Corp. Deal done.")
        assert extract_body_text(page_html(page)) == page.text

    def test_chrome_removed(self):
        page = make_page("Body text only.")
        extracted = extract_text(page_html(page))
        assert "Copyright" not in extracted
        assert "related" not in extracted

    def test_entities_unescaped(self):
        page = make_page("Smith & Jones rose 5%.")
        assert "Smith & Jones rose 5%." in extract_text(
            page_html(page)
        )

    def test_roundtrip_over_generated_corpus(self):
        web = build_web(40)
        for document in web.documents[:20]:
            page = web.fetch(document.url)
            assert extract_body_text(page_html(page)) == page.text

    def test_extraction_feeds_tokenizer_identically(self):
        from repro.text.tokenizer import tokenize_words

        page = make_page("Acme Inc paid $4.5 billion on Monday.")
        recovered = extract_body_text(page_html(page))
        assert tokenize_words(recovered) == tokenize_words(page.text)
