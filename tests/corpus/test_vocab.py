"""Gazetteer construction tests."""

from __future__ import annotations

from repro.corpus import vocab


class TestOrganizations:
    def test_enumeration_is_deterministic(self):
        assert vocab.build_org_names(50) == vocab.build_org_names(50)

    def test_limit_respected(self):
        assert len(vocab.build_org_names(10)) == 10

    def test_all_have_legal_suffix(self):
        suffixes = tuple(vocab.ORG_SUFFIXES)
        for name in vocab.build_org_names(100):
            assert name.endswith(suffixes)

    def test_extended_names_have_three_parts(self):
        for name in vocab.build_org_names_extended(30):
            assert len(name.split()) == 3

    def test_no_duplicates_in_combined_list(self):
        assert len(set(vocab.ORGANIZATIONS)) == len(vocab.ORGANIZATIONS)


class TestPeople:
    def test_person_names_are_two_tokens(self):
        for name in vocab.build_person_names(100):
            assert len(name.split()) == 2

    def test_deterministic(self):
        assert vocab.build_person_names(80) == vocab.build_person_names(80)


class TestCanonicalKey:
    def test_case_insensitive(self):
        assert vocab.canonical_org_key("ACME Inc") == (
            vocab.canonical_org_key("acme inc")
        )

    def test_strips_trailing_period(self):
        assert vocab.canonical_org_key("Acme Inc.") == (
            vocab.canonical_org_key("Acme Inc")
        )

    def test_collapses_whitespace(self):
        assert vocab.canonical_org_key("Acme   Inc") == "acme inc"


class TestInventories:
    def test_orientation_phrases_disjoint(self):
        positive = set(vocab.POSITIVE_ORIENTATION_PHRASES)
        negative = set(vocab.NEGATIVE_ORIENTATION_PHRASES)
        assert not positive & negative

    def test_paper_examples_present(self):
        # Section 4 names these exact phrases.
        assert "significant growth" in vocab.POSITIVE_ORIENTATION_PHRASES
        assert "solid quarter" in vocab.POSITIVE_ORIENTATION_PHRASES
        assert "severe losses" in vocab.NEGATIVE_ORIENTATION_PHRASES
        assert "sharp decline" in vocab.NEGATIVE_ORIENTATION_PHRASES

    def test_designations_include_paper_queries(self):
        # The smart queries "new CEO", "new CTO", "new Manager",
        # "new President" presuppose these designations exist.
        for designation in ("CEO", "CTO", "President"):
            assert designation in vocab.DESIGNATIONS
