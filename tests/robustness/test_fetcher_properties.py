"""Property-based invariants for the resilient fetch path.

Seeded-random hypothesis loops in the style of
``tests/ml/test_properties.py``: whatever profile and policy the fuzzer
draws, the fetcher's bounds hold — attempts never exceed the policy,
backoff never speeds up, and an open breaker never lets a request
through before its cool-off.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs.events import EventLog
from repro.robustness.faults import FaultProfile, FaultyWeb
from repro.robustness.fetcher import (
    CircuitBreaker,
    ResilientFetcher,
    RetryPolicy,
)

_WEB = build_web(80, CorpusConfig(seed=3))
_URLS = [doc.url for doc in _WEB.documents]


@st.composite
def profiles(draw):
    rate = st.floats(0.0, 1.0, allow_nan=False, width=32)
    return FaultProfile(
        transient_rate=draw(rate),
        dead_rate=draw(rate),
        slow_rate=draw(rate),
        truncate_rate=draw(rate),
        garble_rate=draw(rate),
        flaky_host_rate=draw(rate),
        max_transient_failures=draw(st.integers(1, 6)),
        max_slow_timeouts=draw(st.integers(1, 3)),
        flap_period=draw(st.floats(1.0, 50.0, allow_nan=False)),
    )


@st.composite
def policies(draw):
    base = draw(st.floats(0.5, 4.0, allow_nan=False))
    return RetryPolicy(
        max_attempts=draw(st.integers(1, 8)),
        base_backoff=base,
        backoff_factor=draw(st.floats(1.0, 3.0, allow_nan=False)),
        max_backoff=base * draw(st.floats(1.0, 16.0, allow_nan=False)),
        jitter=draw(st.floats(0.0, 1.0, allow_nan=False)),
    )


@settings(max_examples=30, deadline=None)
@given(profiles(), policies(), st.integers(0, 2**16), st.integers(0, 9))
def test_attempts_bounded_and_outcomes_consistent(
    profile, policy, seed, url_pick
):
    web = FaultyWeb(_WEB, profile, seed=seed)
    fetcher = ResilientFetcher(web, policy=policy, seed=seed)
    for url in _URLS[url_pick : url_pick + 8]:
        outcome = fetcher.fetch(url)
        assert 0 <= outcome.attempts <= policy.max_attempts
        # A page and a failure status are mutually exclusive.
        if outcome.page is not None:
            assert outcome.status in ("ok", "degraded")
        else:
            assert outcome.status in (
                "dead", "exhausted", "breaker_open"
            )
            assert outcome.url in fetcher.dead_letter_urls
    # Every dead letter names a fetched URL, with a reason.
    for letter in fetcher.dead_letters:
        assert letter.reason
        assert letter.attempts <= policy.max_attempts


@settings(max_examples=30, deadline=None)
@given(policies(), st.integers(0, 2**16), st.integers(1, 6))
def test_backoff_schedule_monotone_non_decreasing(
    policy, seed, n_failures
):
    profile = FaultProfile(
        transient_rate=1.0, max_transient_failures=n_failures
    )
    web = FaultyWeb(_WEB, profile, seed=seed)
    log = EventLog()
    fetcher = ResilientFetcher(
        web, policy=policy, seed=seed,
        failure_threshold=1_000, event_log=log,
    )
    fetcher.fetch(_URLS[0])
    waits = [e.payload["wait_ticks"] for e in log.events("fetch_retry")]
    assert waits == sorted(waits)
    # And each wait respects the policy's jittered envelope.
    for attempt, wait in enumerate(waits, start=1):
        base = policy.backoff(attempt)
        assert wait >= base - 1e-9
        # Monotonicity may carry a previous (larger) wait forward, so
        # the upper envelope is the largest jittered base so far.
        ceiling = max(
            policy.backoff(k) * (1.0 + policy.jitter)
            for k in range(1, attempt + 1)
        )
        assert wait <= ceiling + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 10),
    st.floats(0.5, 100.0, allow_nan=False),
    st.lists(st.floats(0.0, 500.0, allow_nan=False), min_size=1,
             max_size=40),
)
def test_breaker_never_serves_while_open_before_cool_off(
    threshold, cool_off, times
):
    breaker = CircuitBreaker(
        failure_threshold=threshold, cool_off=cool_off
    )
    for _ in range(threshold):
        breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.OPEN
    for now in times:
        allowed = breaker.allow(now)
        if now - breaker.opened_at < cool_off:
            assert not allowed, (
                "breaker served a request while open before cool-off"
            )
        if breaker.state == CircuitBreaker.HALF_OPEN:
            # Fail the trial: must re-open for a fresh cool-off.
            breaker.record_failure(now)
            assert breaker.state == CircuitBreaker.OPEN


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**16))
def test_fetcher_is_a_pure_function_of_seed(seed):
    def run():
        web = FaultyWeb(
            _WEB,
            FaultProfile(transient_rate=0.6, dead_rate=0.2,
                         slow_rate=0.2),
            seed=seed,
        )
        fetcher = ResilientFetcher(web, seed=seed)
        return [
            (o.status, o.attempts, round(o.wait_ticks, 9))
            for o in (fetcher.fetch(url) for url in _URLS[:12])
        ]

    assert run() == run()
