"""Chaos matrix: the full pipeline under every shipped fault profile.

The degradation invariant this suite pins down:

- under **transient-only** profiles (retries always win eventually) the
  alert set is *identical* to the fault-free run's;
- under **lossy** profiles (dead links, host flaps, corrupted pages)
  the alert set is a *subset* of the fault-free run's — degraded input
  may lose alerts but must never mint new ones;
- under *no* profile does the pipeline raise: crawls complete around
  failures and report them instead.

Classifiers are trained once on the fault-free corpus and reused for
every profile, so any alert-set difference is attributable to the
gather stage alone.
"""

from __future__ import annotations

import pytest

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs.events import EventLog, validate_record
from repro.robustness.faults import PROFILES, FaultyWeb, get_profile

SEED = 13
FAULT_SEED = 5
CONFIG = EtapConfig(top_k_per_query=40, negative_sample_size=600)

FAULT_PROFILES = sorted(name for name in PROFILES if name != "none")


def alert_set(etap: Etap) -> set[tuple[str, str]]:
    events = etap.extract_trigger_events()
    return {
        (driver_id, event.snippet_id)
        for driver_id, ranked in events.items()
        for event in ranked
    }


@pytest.fixture(scope="module")
def baseline():
    """Fault-free pipeline run: the reference alert set + classifiers."""
    web = build_web(250, CorpusConfig(seed=SEED))
    etap = Etap.from_web(web, config=CONFIG)
    etap.gather()
    etap.train()
    alerts = alert_set(etap)
    assert alerts, "baseline produced no alerts; the matrix tests nothing"
    return web, etap, alerts


@pytest.mark.chaos
@pytest.mark.parametrize("profile_name", FAULT_PROFILES)
def test_degradation_invariant_holds(profile_name, baseline):
    base_web, base_etap, base_alerts = baseline
    profile = get_profile(profile_name)
    web = FaultyWeb(base_web, profile, seed=FAULT_SEED)
    log = EventLog()
    etap = Etap.from_web(web, config=CONFIG, event_log=log)
    report = etap.gather()  # must not raise, whatever the profile
    # Reuse the fault-free classifiers: differences are gather-only.
    etap.classifiers = base_etap.classifiers
    alerts = alert_set(etap)

    if profile.lossy:
        assert alerts <= base_alerts, (
            f"{profile_name}: lossy profile minted alerts absent from "
            f"the fault-free run: {sorted(alerts - base_alerts)[:5]}"
        )
    else:
        assert alerts == base_alerts, (
            f"{profile_name}: transient-only profile changed the alert "
            "set (retries should have recovered every page)"
        )

    # The run reported its degradation instead of hiding it.
    injected = (
        report.pages_retried
        + report.pages_failed
        + report.pages_degraded
        + report.dead_letters
    )
    assert injected > 0, (
        f"{profile_name}: profile injected no observable faults"
    )
    for record in log.events():
        assert not validate_record(record.to_dict())


@pytest.mark.chaos
def test_lossy_profiles_actually_lose_something(baseline):
    """At least one lossy profile produces a *strict* subset.

    Guards the matrix against vacuous passes: if every lossy run were
    identical to the baseline, the subset assertions above would be
    testing nothing.
    """
    base_web, base_etap, base_alerts = baseline
    strict = []
    for name in FAULT_PROFILES:
        profile = get_profile(name)
        if not profile.lossy:
            continue
        web = FaultyWeb(base_web, profile, seed=FAULT_SEED)
        etap = Etap.from_web(web, config=CONFIG)
        etap.gather()
        etap.classifiers = base_etap.classifiers
        if alert_set(etap) < base_alerts:
            strict.append(name)
    assert strict, "no lossy profile dropped a single alert"
