"""Unit tests for the resilient fetcher: retries, breaker, dead letters."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs.events import EventLog, validate_record
from repro.obs.tracer import Tracer
from repro.robustness.faults import (
    FaultProfile,
    FaultyWeb,
    get_profile,
)
from repro.robustness.fetcher import (
    CircuitBreaker,
    ResilientFetcher,
    RetryPolicy,
)


def tiny_web():
    return build_web(60, CorpusConfig(seed=5))


def article_url(inner) -> str:
    return inner.documents[0].url


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff=0.5, base_backoff=1.0)

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            base_backoff=1.0, backoff_factor=2.0, max_backoff=8.0
        )
        assert [policy.backoff(k) for k in range(1, 6)] == [
            1.0, 2.0, 4.0, 8.0, 8.0
        ]


class TestFetchPaths:
    def test_clean_fetch_is_ok_first_attempt(self):
        inner = tiny_web()
        fetcher = ResilientFetcher(
            FaultyWeb(inner, get_profile("none"), seed=0)
        )
        outcome = fetcher.fetch(article_url(inner))
        assert outcome.ok and outcome.status == "ok"
        assert outcome.attempts == 1 and outcome.retries == 0
        assert fetcher.dead_letters == []

    def test_transient_failure_is_retried_to_success(self):
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(transient_rate=1.0, max_transient_failures=2),
            seed=0,
        )
        fetcher = ResilientFetcher(web, event_log=EventLog())
        url = article_url(inner)
        outcome = fetcher.fetch(url)
        assert outcome.ok
        assert outcome.retries == web.plan_of(url).transient_failures
        assert outcome.attempts == outcome.retries + 1
        retries = fetcher.event_log.events("fetch_retry")
        assert len(retries) == outcome.retries
        assert all(not validate_record(e.to_dict()) for e in retries)

    def test_dead_link_dead_letters_without_retry(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(dead_rate=1.0), seed=0)
        fetcher = ResilientFetcher(web, event_log=EventLog())
        url = article_url(inner)
        outcome = fetcher.fetch(url)
        assert not outcome.ok and outcome.status == "dead"
        assert outcome.attempts == 1
        assert fetcher.dead_letter_urls == {url}
        assert fetcher.dead_letters[0].reason == "dead_link"
        (letter_event,) = fetcher.event_log.events("fetch_dead_letter")
        assert letter_event.payload["reason"] == "dead_link"
        assert not validate_record(letter_event.to_dict())

    def test_exhaustion_dead_letters_with_reason(self):
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(transient_rate=1.0, max_transient_failures=9),
            seed=0,
        )
        fetcher = ResilientFetcher(
            web,
            policy=RetryPolicy(max_attempts=3),
            failure_threshold=50,
        )
        outcome = fetcher.fetch(article_url(inner))
        assert not outcome.ok and outcome.status == "exhausted"
        assert outcome.attempts == 3
        assert fetcher.dead_letters[0].reason == "exhausted:transient"

    def test_missing_url_dead_letters_as_missing(self):
        inner = tiny_web()
        fetcher = ResilientFetcher(
            FaultyWeb(inner, get_profile("none"), seed=0)
        )
        outcome = fetcher.fetch("http://nowhere.example.com/x.html")
        assert not outcome.ok
        assert fetcher.dead_letters[0].reason == "missing"

    def test_degraded_page_is_flagged(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(truncate_rate=1.0), seed=0)
        fetcher = ResilientFetcher(web)
        outcome = fetcher.fetch(article_url(inner))
        assert outcome.ok and outcome.status == "degraded"

    def test_works_on_a_plain_web_without_fault_protocol(self):
        inner = tiny_web()
        fetcher = ResilientFetcher(inner)
        outcome = fetcher.fetch(article_url(inner))
        assert outcome.ok and outcome.status == "ok"
        assert fetcher.now > 0 or True  # internal clock, no crash

    def test_counters_reach_the_metrics_registry(self):
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(transient_rate=1.0, max_transient_failures=1),
            seed=0,
        )
        tracer = Tracer()
        fetcher = ResilientFetcher(web, tracer=tracer)
        fetcher.fetch(article_url(inner))
        counters = tracer.registry.counters
        assert counters["fetch.attempts"] == 2
        assert counters["fetch.retries"] == 1


class TestBackoff:
    def test_waits_are_monotone_non_decreasing(self):
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(transient_rate=1.0, max_transient_failures=6),
            seed=3,
        )
        log = EventLog()
        fetcher = ResilientFetcher(
            web,
            policy=RetryPolicy(max_attempts=7, jitter=0.9),
            failure_threshold=100,
            event_log=log,
        )
        fetcher.fetch(article_url(inner))
        waits = [
            e.payload["wait_ticks"] for e in log.events("fetch_retry")
        ]
        assert len(waits) >= 2
        assert waits == sorted(waits)

    def test_backoff_advances_the_simulated_clock_only(self):
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(transient_rate=1.0, max_transient_failures=2),
            seed=0,
        )
        fetcher = ResilientFetcher(web)
        before = web.now
        outcome = fetcher.fetch(article_url(inner))
        # attempts ticks + backoff waits, all on the shared web clock.
        assert web.now == pytest.approx(
            before + outcome.attempts + outcome.wait_ticks
        )


class TestCircuitBreaker:
    def make_down_host(self):
        """A web whose article hosts are down for a long window."""
        inner = tiny_web()
        web = FaultyWeb(
            inner,
            FaultProfile(flaky_host_rate=1.0, flap_period=10_000.0),
            seed=0,
        )
        web.advance(10_000.0)  # every flaky host now down
        return inner, web

    def test_breaker_opens_after_threshold_and_blocks(self):
        inner, web = self.make_down_host()
        log = EventLog()
        fetcher = ResilientFetcher(
            web,
            policy=RetryPolicy(
                max_attempts=3, base_backoff=1.0, max_backoff=2.0
            ),
            failure_threshold=4,
            breaker_cool_off=1_000_000.0,
            event_log=log,
        )
        urls = [d.url for d in inner.documents[:4]]
        host = urls[0].split("/")[2]
        same_host = [u for u in inner.urls if f"//{host}/" in u][:3]
        outcomes = [fetcher.fetch(u) for u in same_host]
        assert fetcher.breaker_states()[host] == "open"
        assert any(o.status == "breaker_open" for o in outcomes)
        opens = log.events("breaker_open")
        assert len(opens) == 1 and opens[0].payload["host"] == host
        assert not validate_record(opens[0].to_dict())
        # While open, requests are rejected without touching the web.
        attempts_before = web.fetch_attempts
        blocked = fetcher.fetch(same_host[0])
        assert blocked.status == "breaker_open"
        assert web.fetch_attempts == attempts_before

    def test_breaker_half_opens_after_cool_off_and_closes(self):
        inner, web = self.make_down_host()
        log = EventLog()
        fetcher = ResilientFetcher(
            web,
            policy=RetryPolicy(max_attempts=2, base_backoff=1.0,
                               max_backoff=1.0, jitter=0.0),
            failure_threshold=2,
            breaker_cool_off=50.0,
            event_log=log,
        )
        url = article_url(inner)
        host = url.split("/")[2]
        fetcher.fetch(url)  # 2 failures -> breaker opens
        assert fetcher.breaker_states()[host] == "open"
        # Cool-off passes AND the flap window flips back up.
        web.advance(10_000.0)
        outcome = fetcher.fetch(url)
        assert outcome.ok
        assert fetcher.breaker_states()[host] == "closed"
        closes = log.events("breaker_close")
        assert len(closes) == 1 and closes[0].payload["host"] == host
        assert not validate_record(closes[0].to_dict())

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cool_off=10.0)
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)  # half-open trial
        assert breaker.state == "half_open"
        breaker.record_failure(10.0)
        assert breaker.state == "open"
        assert not breaker.allow(15.0)
        assert breaker.allow(20.0)
        breaker.record_success()
        assert breaker.state == "closed"


class TestDeterminismAcceptance:
    """Same seed + profile => identical behaviour across two runs."""

    @staticmethod
    def run_once():
        inner = build_web(120, CorpusConfig(seed=7))
        web = FaultyWeb(inner, get_profile("hostile"), seed=11)
        log = EventLog()
        fetcher = ResilientFetcher(web, seed=11, event_log=log)
        for url in inner.urls:
            fetcher.fetch(url)
        schedule = [
            (e.event_type, tuple(sorted(e.payload.items())))
            for e in log.events()
        ]
        breakers = fetcher.breaker_states()
        dead = [(d.url, d.reason, d.attempts)
                for d in fetcher.dead_letters]
        return schedule, breakers, dead

    def test_retry_schedule_breakers_and_dead_letters_identical(self):
        first = self.run_once()
        second = self.run_once()
        assert first[0] == second[0]  # retry/breaker event schedule
        assert first[1] == second[1]  # breaker end states
        assert first[2] == second[2]  # dead-letter queue
        assert len(first[0]) > 0      # and the run was actually noisy
