"""Unit tests for the deterministic fault-injecting web wrapper."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusConfig
from repro.corpus.web import FRONT_PAGE_URL, Page, SyntheticWeb, build_web
from repro.robustness.faults import (
    PROFILES,
    DeadLinkError,
    FaultProfile,
    FaultyWeb,
    HostDownError,
    SlowFetchError,
    TransientFetchError,
    get_profile,
    profile_names,
)


def tiny_web() -> SyntheticWeb:
    return build_web(60, CorpusConfig(seed=5))


def drain(web: FaultyWeb, url: str, max_attempts: int = 10):
    """Fetch until success or permanent failure; returns (page, fails)."""
    failures = []
    for _ in range(max_attempts):
        try:
            return web.fetch(url), failures
        except DeadLinkError:
            raise
        except Exception as exc:  # transient kinds
            failures.append(exc)
    return None, failures


class TestProfiles:
    def test_registry_has_the_shipped_profiles(self):
        assert "none" in PROFILES and "flaky" in PROFILES
        assert "hostile" in PROFILES
        assert len(profile_names()) >= 6

    def test_unknown_profile_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown fault profile"):
            get_profile("nope")

    def test_every_faulting_profile_injects_at_least_20_percent(self):
        for name, profile in PROFILES.items():
            if name == "none":
                continue
            assert profile.injection_rate >= 0.20, name

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(max_transient_failures=0)

    def test_with_overrides_merges_per_host(self):
        profile = FaultProfile(transient_rate=0.5).with_overrides(
            "bad.example.com", transient_rate=1.0, dead_rate=1.0
        )
        assert profile.rate("transient_rate", "bad.example.com") == 1.0
        assert profile.rate("dead_rate", "bad.example.com") == 1.0
        assert profile.rate("transient_rate", "other.com") == 0.5
        assert profile.rate("dead_rate", "other.com") == 0.0


class TestNoneProfileIsTransparent:
    def test_every_fetch_succeeds_with_original_content(self):
        inner = tiny_web()
        web = FaultyWeb(inner, get_profile("none"), seed=1)
        for url in inner.urls:
            assert web.fetch(url).text == inner.peek(url).text
        assert web.degraded_served == set()
        assert sum(web.stats.values()) == 0


class TestDeterminism:
    def test_same_seed_same_plan(self):
        inner = tiny_web()
        a = FaultyWeb(inner, get_profile("hostile"), seed=42)
        b = FaultyWeb(inner, get_profile("hostile"), seed=42)
        for url in inner.urls:
            assert a.plan_of(url) == b.plan_of(url)

    def test_different_seed_different_plan_somewhere(self):
        inner = tiny_web()
        a = FaultyWeb(inner, get_profile("hostile"), seed=1)
        b = FaultyWeb(inner, get_profile("hostile"), seed=2)
        assert any(
            a.plan_of(url) != b.plan_of(url) for url in inner.urls
        )

    def test_attempt_sequence_reproducible(self):
        inner = tiny_web()

        def history(url: str):
            web = FaultyWeb(inner, get_profile("flaky"), seed=9)
            outcomes = []
            for _ in range(5):
                try:
                    web.fetch(url)
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes

        for url in inner.urls[:20]:
            assert history(url) == history(url)


class TestFaultKinds:
    def test_dead_link_always_dead(self):
        inner = tiny_web()
        profile = FaultProfile(dead_rate=1.0)
        web = FaultyWeb(inner, profile, seed=0)
        url = inner.documents[0].url
        for _ in range(3):
            with pytest.raises(DeadLinkError):
                web.fetch(url)
        assert not DeadLinkError(url).transient

    def test_transient_recovers_after_planned_failures(self):
        inner = tiny_web()
        profile = FaultProfile(
            transient_rate=1.0, max_transient_failures=2
        )
        web = FaultyWeb(inner, profile, seed=0)
        url = inner.documents[0].url
        plan = web.plan_of(url)
        assert 1 <= plan.transient_failures <= 2
        page, failures = drain(web, url)
        assert page is not None
        assert len(failures) == plan.transient_failures
        assert all(
            isinstance(f, TransientFetchError) for f in failures
        )

    def test_slow_fetch_times_out_then_recovers_and_burns_ticks(self):
        inner = tiny_web()
        profile = FaultProfile(
            slow_rate=1.0, max_slow_timeouts=1, slow_penalty_ticks=5.0
        )
        web = FaultyWeb(inner, profile, seed=0)
        url = inner.documents[0].url
        before = web.now
        with pytest.raises(SlowFetchError):
            web.fetch(url)
        # 1 tick for the fetch + the 5-tick timeout penalty.
        assert web.now == before + 6.0
        assert web.fetch(url).url == url

    def test_truncated_page_is_shorter_and_marked_degraded(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(truncate_rate=1.0), seed=0)
        url = inner.documents[0].url
        page = web.fetch(url)
        assert len(page.text) < len(inner.peek(url).text)
        assert web.is_degraded(url)
        assert url in web.degraded_served

    def test_garbled_page_differs_but_same_length(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(garble_rate=1.0), seed=0)
        url = inner.documents[0].url
        page = web.fetch(url)
        original = inner.peek(url).text
        assert page.text != original
        assert len(page.text) == len(original)

    def test_flapping_host_fails_in_down_windows_only(self):
        inner = tiny_web()
        profile = FaultProfile(flaky_host_rate=1.0, flap_period=10.0)
        web = FaultyWeb(inner, profile, seed=0)
        url = inner.documents[0].url
        host = url.split("/")[2]
        assert web.host_is_flaky(host)
        assert not web.host_is_down(host)  # t=0: up window
        assert web.fetch(url).url == url
        web.advance(10.0)  # into the down window
        assert web.host_is_down(host)
        with pytest.raises(HostDownError):
            web.fetch(url)
        web.advance(10.0)  # back up
        assert web.fetch(url).url == url

    def test_404_stays_a_keyerror(self):
        web = FaultyWeb(tiny_web(), get_profile("hostile"), seed=0)
        with pytest.raises(KeyError):
            web.fetch("http://nowhere.example.com/none.html")


class TestImmunityAndPassthrough:
    def test_front_page_is_immune_by_default(self):
        inner = tiny_web()
        profile = FaultProfile(dead_rate=1.0, flaky_host_rate=1.0)
        web = FaultyWeb(inner, profile, seed=0)
        web.advance(100.0)
        assert web.fetch(FRONT_PAGE_URL).url == FRONT_PAGE_URL

    def test_peek_never_faults_and_costs_no_attempt(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(dead_rate=1.0), seed=0)
        url = inner.documents[0].url
        assert web.peek(url).text == inner.peek(url).text
        assert web.fetch_attempts == 0

    def test_published_page_resets_fault_state(self):
        inner = tiny_web()
        web = FaultyWeb(inner, FaultProfile(dead_rate=1.0), seed=0)
        url = inner.documents[0].url
        with pytest.raises(DeadLinkError):
            web.fetch(url)
        assert web.fetch_attempts == 1
        fresh = inner.peek(url)
        web.add_page(
            Page(url=url, title=fresh.title, text="republished",
                 links=(), document=fresh.document)
        )
        # Republishing resets the URL's attempt history; the plan is
        # redrawn from the same seed (and is hence the same draw).
        assert web.fetch_attempts == 0
        assert web.plan_of(url).dead

    def test_web_interface_passthrough(self):
        inner = tiny_web()
        web = FaultyWeb(inner, get_profile("none"), seed=0)
        assert len(web) == len(inner)
        assert web.urls == inner.urls
        assert web.has(FRONT_PAGE_URL)
        assert web.graph is inner.graph
        assert len(web.documents) == len(inner.documents)
