"""Regenerate the golden pipeline snapshot.

Run from the repo root after any *intentional* behaviour change:

    PYTHONPATH=src python tests/golden/regen.py

then review the diff of ``tests/golden/pipeline_small.json`` in the PR —
the diff IS the behaviour change.  ``test_golden_pipeline.py`` fails
when the pipeline's output drifts from this file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.alerts import AlertService
from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web

GOLDEN_PATH = Path(__file__).with_name("pipeline_small.json")

#: Everything below is part of the snapshot's identity — change any of
#: these and the golden file must be regenerated.
N_DOCS = 220
SEED = 29
#: The evolver needs its own seed: with the corpus seed it would
#: replay the same document stream and dedup would drop every "new"
#: page, leaving the alert leg of the snapshot vacuous.
EVOLVE_SEED = 71
N_NEW_DOCS = 30
CONFIG = EtapConfig(top_k_per_query=40, negative_sample_size=600)


def snapshot(config: EtapConfig = CONFIG) -> dict:
    """Run the pinned scenario.

    ``config`` lets the equivalence tests re-run the exact scenario
    with e.g. ``workers=4``; anything that changes the *output* (and so
    the snapshot identity) must stay in :data:`CONFIG` itself.
    """
    web = build_web(N_DOCS, CorpusConfig(seed=SEED))
    etap = Etap.from_web(web, config=config)
    etap.gather()
    etap.train()

    events = etap.extract_trigger_events()
    per_driver_counts = {
        driver_id: len(ranked)
        for driver_id, ranked in sorted(events.items())
    }
    top5 = [
        [score.company, round(score.mrr, 4), score.n_trigger_events]
        for score in etap.company_report(events)[:5]
    ]

    service = AlertService(etap)
    WebEvolver(web, CorpusConfig(seed=EVOLVE_SEED)).advance(N_NEW_DOCS)
    report = service.poll()
    alert_ids = sorted(alert.alert_id for alert in report.alerts)

    return {
        "params": {
            "n_docs": N_DOCS,
            "seed": SEED,
            "evolve_seed": EVOLVE_SEED,
            "n_new_docs": N_NEW_DOCS,
            "top_k_per_query": config.top_k_per_query,
            "negative_sample_size": config.negative_sample_size,
        },
        "per_driver_counts": per_driver_counts,
        "top5": top5,
        "alert_ids": alert_ids,
    }


#: Micro-batch splits the streaming leg is pinned under; the streamed
#: alert set must be identical for every split AND identical to the
#: batch path's ``alert_ids`` (split-invariance is asserted at regen
#: time, so the golden section stores one common result).
STREAM_SPLITS = (1, 3, N_NEW_DOCS)


def stream_snapshot(config: EtapConfig = CONFIG) -> dict:
    """The golden corpus through the stream processor, split N ways.

    Same scenario as :func:`snapshot`'s alert leg, but the evolved
    documents are fed through :class:`~repro.stream.StreamProcessor`
    as micro-batches (watermark disabled: the synthetic corpus
    publishes days in random order, and this leg pins *equivalence*,
    not lateness routing — that has its own property suite).
    """
    from collections import Counter

    from repro.stream import (
        StreamProcessor,
        batches_of,
        stream_document_of,
    )

    evolver_web = build_web(N_DOCS, CorpusConfig(seed=SEED))
    documents = [
        stream_document_of(document)
        for document in WebEvolver(
            evolver_web, CorpusConfig(seed=EVOLVE_SEED)
        ).advance(N_NEW_DOCS)
    ]

    per_split: dict[int, dict] = {}
    for n_batches in STREAM_SPLITS:
        web = build_web(N_DOCS, CorpusConfig(seed=SEED))
        etap = Etap.from_web(web, config=config)
        etap.gather()
        etap.train()
        processor = StreamProcessor(etap, allowed_lateness=None)
        source = batches_of(documents, n_batches)
        processor.run(source, until_cycle=len(source))
        per_split[n_batches] = {
            "alert_ids": sorted(a.alert_id for a in processor.alerts),
            "per_driver_counts": dict(sorted(
                Counter(a.driver_id for a in processor.alerts).items()
            )),
        }

    first = per_split[STREAM_SPLITS[0]]
    for n_batches, result in per_split.items():
        assert result == first, (
            f"stream output depends on the batch split "
            f"({STREAM_SPLITS[0]} vs {n_batches} micro-batches): "
            f"{first} != {result}"
        )
    return {"splits": list(STREAM_SPLITS), **first}


def main() -> None:
    data = snapshot()
    data["stream"] = stream_snapshot()
    assert data["stream"]["alert_ids"] == data["alert_ids"], (
        "streaming and batch paths minted different alert sets"
    )
    GOLDEN_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
    print(
        f"  drivers: {data['per_driver_counts']}, "
        f"alerts: {len(data['alert_ids'])}, "
        f"stream splits {data['stream']['splits']} equivalent"
    )


if __name__ == "__main__":
    main()
