"""Regenerate the golden admission-fairness schedule.

Run from the repo root after any *intentional* change to admission
or quota semantics:

    PYTHONPATH=src python tests/golden/regen_fairness.py

then review the diff of ``tests/golden/fairness_schedule.json`` in the
PR — the diff IS the behaviour change.  ``tests/serve/test_fairness.py``
fails when the admission schedule drifts from this file.

The pinned scenario: two tenants at 10:1 offered load against a full
admission queue.  ``heavy`` fires on ten of every eleven steps,
``light`` on one; releases happen every other step (slower than
arrivals), so the queue saturates early and *stays* saturated — every
admit from then on is a fairness decision about who gets the freed
slot.  With 25% quotas reserved per tenant, every one of ``light``'s
requests lands — its reserved slots are always free again by its next
arrival.  The contrast leg without quotas drops ``light`` to coin-flip
admission: a freed slot goes to whichever tenant's step comes next, so
the minority tenant's service depends purely on arrival phase.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.clock import FakeClock
from repro.serve.admission import AdmissionController

GOLDEN_PATH = Path(__file__).with_name("fairness_schedule.json")

#: Everything below is part of the schedule's identity.
N_STEPS = 220
MAX_PENDING = 8
QUOTAS = {"light": 0.25, "heavy": 0.25}  # 2 slots each, 4 shared
HEAVY_PER_LIGHT = 10  # the 10:1 offered-load ratio


def offered_client(step: int) -> str:
    return "light" if step % (HEAVY_PER_LIGHT + 1) == 0 else "heavy"


def fairness_schedule(quotas: dict | None = QUOTAS) -> dict:
    """Drive the controller through the pinned contention scenario.

    Single-threaded and on a fake clock, so the admit/reject decision
    at every step is exactly reproducible.  Returns the step-by-step
    schedule plus per-tenant offered/admitted rollups.
    """
    controller = AdmissionController(
        rate=1e9,
        burst=1e9,
        max_pending=MAX_PENDING,
        clock=FakeClock(),
        quotas=quotas,
    )
    in_flight: deque[str] = deque()
    schedule: list[list] = []
    offered = {"light": 0, "heavy": 0}
    admitted = {"light": 0, "heavy": 0}
    for step in range(N_STEPS):
        client = offered_client(step)
        offered[client] += 1
        decision = controller.admit(client)
        if decision.admitted:
            admitted[client] += 1
            in_flight.append(client)
        schedule.append([step, client, bool(decision.admitted)])
        # Slow consumer: drain one request every other step, oldest
        # first, so arrivals outpace service and the queue stays full.
        if step % 2 == 1 and in_flight:
            controller.release(in_flight.popleft())
    return {
        "offered": offered,
        "admitted": admitted,
        "acceptance": {
            client: round(admitted[client] / offered[client], 4)
            for client in sorted(offered)
        },
        "schedule": schedule,
    }


def main() -> None:
    data = {
        "params": {
            "n_steps": N_STEPS,
            "max_pending": MAX_PENDING,
            "quotas": QUOTAS,
            "heavy_per_light": HEAVY_PER_LIGHT,
        },
        "with_quotas": fairness_schedule(QUOTAS),
        "without_quotas": fairness_schedule(None),
    }
    GOLDEN_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
    for leg in ("with_quotas", "without_quotas"):
        print(f"  {leg}: acceptance {data[leg]['acceptance']}")


if __name__ == "__main__":
    main()
