"""Regenerate the golden query-planner snapshot.

Run from the repo root after any *intentional* change to candidate
generation, evaluation, or portfolio selection:

    PYTHONPATH=src python tests/golden/regen_queries.py

then review the diff of ``tests/golden/queries_plan.json`` in the PR —
the diff IS the behaviour change.  ``tests/queries/test_golden.py``
fails when planner output drifts from this file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.drivers import available_driver_ids, get_driver
from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import DOC_TYPE_FOR_DRIVER, CorpusConfig
from repro.corpus.web import build_web
from repro.queries.recipes import PlannerSettings, plan_portfolios

GOLDEN_PATH = Path(__file__).with_name("queries_plan.json")

#: Everything below is part of the snapshot's identity — change any of
#: these and the golden file must be regenerated.
N_DOCS = 240
SEED = 41
BUDGET = 120
TOP_K = 30
MAX_CANDIDATES = 120


def _extended_mix() -> dict[str, float]:
    """The paper mix plus every extended driver's trigger doc type."""
    mix = dict(CorpusConfig().mix)
    for driver_id in available_driver_ids():
        mix.setdefault(DOC_TYPE_FOR_DRIVER[driver_id], 0.07)
    return mix


def _portfolio_dict(portfolio) -> dict:
    return {
        "queries": [
            [
                item.evaluation.candidate.query,
                item.evaluation.candidate.source,
                item.marginal_cost,
                round(item.marginal_gain, 4),
            ]
            for item in portfolio.selected
        ],
        "total_cost": portfolio.total_cost,
        "coverage": portfolio.coverage,
        "precision_at_budget": round(portfolio.precision_at_budget, 4),
    }


def snapshot() -> dict:
    """Plan a portfolio for every available driver at pinned params."""
    web = build_web(N_DOCS, CorpusConfig(seed=SEED, mix=_extended_mix()))
    drivers = [get_driver(d) for d in available_driver_ids()]
    etap = Etap.from_web(
        web,
        drivers=drivers,
        config=EtapConfig(top_k_per_query=TOP_K),
    )
    etap.gather()
    plans = plan_portfolios(
        etap,
        PlannerSettings(
            budget=BUDGET, top_k=TOP_K, max_candidates=MAX_CANDIDATES
        ),
    )
    return {
        "params": {
            "n_docs": N_DOCS,
            "seed": SEED,
            "budget": BUDGET,
            "top_k": TOP_K,
            "max_candidates": MAX_CANDIDATES,
        },
        "drivers": {
            driver_id: {
                "n_candidates": plan.n_candidates,
                "planned": _portfolio_dict(plan.planned),
                "baseline": _portfolio_dict(plan.baseline),
            }
            for driver_id, plan in sorted(plans.items())
        },
    }


def main() -> None:
    data = snapshot()
    GOLDEN_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
    for driver_id, plan in data["drivers"].items():
        planned, baseline = plan["planned"], plan["baseline"]
        print(
            f"  {driver_id:22s} "
            f"P@B {planned['precision_at_budget']:.3f} "
            f"(cost {planned['total_cost']}) vs seeds "
            f"{baseline['precision_at_budget']:.3f} "
            f"(cost {baseline['total_cost']})"
        )


if __name__ == "__main__":
    main()
