"""End-to-end near-duplicate handling: mirrored wire stories."""

from __future__ import annotations

import pytest

from repro.core.ranking import (
    deduplicate_events,
    make_trigger_events,
    rank_events,
)
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.web import build_web
from repro.gather.pipeline import DataGatherer
from repro.text.annotator import Annotator


class TestMirrorGeneration:
    def test_mirror_rate_produces_mirror_docs(self):
        generator = CorpusGenerator(
            CorpusConfig(seed=4, mirror_rate=0.9)
        )
        documents = generator.generate(300)
        mirrors = [
            d for d in documents if "mirror.example.com" in d.url
        ]
        assert mirrors

    def test_mirror_shares_title_and_companies(self):
        generator = CorpusGenerator(
            CorpusConfig(seed=4, mirror_rate=1.0)
        )
        documents = generator.generate(50)
        for index, document in enumerate(documents):
            if "mirror.example.com" not in document.url:
                continue
            original = documents[index - 1]
            assert document.title == original.title
            assert document.companies == original.companies
            assert document.text != original.text  # near, not exact

    def test_zero_rate_produces_none(self):
        generator = CorpusGenerator(CorpusConfig(seed=4, mirror_rate=0))
        documents = generator.generate(200)
        assert not any(
            "mirror.example.com" in d.url for d in documents
        )


class TestGatherNearDedup:
    @pytest.fixture(scope="class")
    def mirrored_web(self):
        return build_web(400, CorpusConfig(seed=9, mirror_rate=0.8))

    def test_near_dedup_drops_mirrors(self, mirrored_web):
        plain = DataGatherer(mirrored_web, max_pages=10_000)
        plain_report = plain.gather()
        deduped = DataGatherer(
            mirrored_web, max_pages=10_000, near_dedup=True
        )
        deduped_report = deduped.gather()
        assert deduped_report.near_duplicates_skipped > 0
        assert (
            deduped_report.documents_stored
            < plain_report.documents_stored
        )

    def test_non_mirror_docs_survive(self, mirrored_web):
        deduped = DataGatherer(
            mirrored_web, max_pages=10_000, near_dedup=True
        )
        report = deduped.gather()
        n_originals = sum(
            1
            for d in mirrored_web.documents
            if "mirror.example.com" not in d.url
        )
        # Nearly all non-mirror documents survive the near-dedup.
        assert report.documents_stored >= 0.9 * n_originals


class TestRankedListDedup:
    def test_duplicate_snippets_collapse(self):
        annotator = Annotator()
        texts = [
            "Acme Inc agreed to acquire Globex Corp for $5 billion "
            "in a deal announced on Monday by both companies.",
            # Same story, one word changed.
            "Acme Inc agreed to acquire Globex Corp for $5 billion "
            "in a deal announced on Tuesday by both companies.",
            "Initech Ltd named Mary Jones its new CEO yesterday.",
        ]
        items = [
            AnnotatedSnippet(
                snippet=Snippet(
                    doc_id=f"m{i}", index=0, sentences=(text,)
                ),
                annotated=annotator.annotate(text),
            )
            for i, text in enumerate(texts)
        ]
        events = rank_events(
            make_trigger_events("ma", items, [0.9, 0.8, 0.7])
        )
        deduped = deduplicate_events(events)
        assert len(deduped) == 2
        # The higher-ranked copy of the duplicated story survives.
        assert deduped[0].item.snippet.doc_id == "m0"
        assert [e.rank for e in deduped] == [1, 2]

    def test_no_duplicates_noop(self):
        annotator = Annotator()
        items = [
            AnnotatedSnippet(
                snippet=Snippet(
                    doc_id=f"x{i}", index=0, sentences=(text,)
                ),
                annotated=annotator.annotate(text),
            )
            for i, text in enumerate([
                "Acme Inc acquired Globex Corp.",
                "A completely different gardening article entirely.",
            ])
        ]
        events = rank_events(
            make_trigger_events("ma", items, [0.9, 0.8])
        )
        assert len(deduplicate_events(events)) == 2
