"""ReplicaGroup/ReplicaSet/ChaosMonkey: shipping, lag, kill/restore."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock
from repro.obs.events import EventLog
from repro.robustness.fetcher import CircuitBreaker
from repro.serve.replication import (
    ChaosMonkey,
    Replica,
    ReplicaGroup,
    ReplicaSet,
)
from repro.serve.shards import ShardedIndex


def make_docs(n: int, marker: str = "alpha"):
    return [
        (
            f"{marker}-{i:04d}",
            f"Acme {marker} acquired Widgets number {i} in a merger",
            f"title {i}",
        )
        for i in range(n)
    ]


def make_snapshot(n_shards: int = 2, n: int = 12, marker: str = "alpha"):
    return ShardedIndex(n_shards=n_shards).rebuild(make_docs(n, marker))


class TestReplica:
    def test_generations_bounded_by_history(self):
        replica = Replica("shard0/r0", shard=0, history=3)
        for generation in range(1, 6):
            replica.install(generation, object())
        assert replica.generations == (3, 4, 5)
        assert replica.generation == 5
        assert not replica.serves(2)
        assert replica.serves(4)

    def test_fresh_replica_is_up_at_generation_zero(self):
        replica = Replica("shard0/r0", shard=0)
        assert replica.up and not replica.down
        assert replica.generation == 0
        assert replica.engine_at(1) is None

    def test_history_must_be_positive(self):
        with pytest.raises(ValueError):
            Replica("shard0/r0", shard=0, history=0)


class TestReplicaGroup:
    def test_install_skips_down_replicas(self):
        group = ReplicaGroup(shard=0, n_replicas=3)
        group.install(1, object())
        group.kill(1)
        group.install(2, object())
        assert [replica.generation for replica in group.replicas] == [
            2, 1, 2,
        ]
        assert group.lag(1) == 1
        assert group.best_generation() == 2

    def test_restore_catches_up_by_default(self):
        group = ReplicaGroup(shard=0, n_replicas=2)
        group.install(1, object())
        group.kill(0)
        group.install(2, object())
        group.restore(0)
        assert group.replicas[0].generation == 2
        assert group.lag(0) == 0

    def test_restore_without_catch_up_stays_stale(self):
        group = ReplicaGroup(shard=0, n_replicas=2)
        group.install(1, object())
        group.kill(0)
        group.install(2, object())
        group.restore(0, catch_up=False)
        assert group.replicas[0].generation == 1
        assert group.lag(0) == 1
        # The stale replica still drags best_generation when it is the
        # newest up copy.
        group.kill(1)
        assert group.best_generation() == 1

    def test_restore_resets_breaker(self):
        group = ReplicaGroup(shard=0, n_replicas=2, failure_threshold=1)
        group.replicas[0].breaker.record_failure(0.0)
        assert group.replicas[0].breaker.state == CircuitBreaker.OPEN
        group.kill(0)
        group.restore(0)
        assert group.replicas[0].breaker.state == CircuitBreaker.CLOSED

    def test_shipping_log_survives_total_outage(self):
        engine = object()
        group = ReplicaGroup(shard=0, n_replicas=2)
        group.kill(0)
        group.kill(1)
        group.install(1, engine)
        assert group.all_down
        assert group.best_generation() == 0
        # The generation still shipped: degraded reads have a source.
        assert group.latest_generation == 1
        assert group.shipped_engine(1) is engine

    def test_shipping_log_bounded_by_history(self):
        group = ReplicaGroup(shard=0, n_replicas=1, history=2)
        for generation in range(1, 5):
            group.install(generation, object())
        assert group.shipped_engine(2) is None
        assert group.shipped_engine(4) is not None


class TestReplicaSet:
    def test_install_snapshot_ships_every_shard(self):
        snapshot = make_snapshot(n_shards=2)
        replicas = ReplicaSet(n_shards=2, n_replicas=3)
        replicas.install_snapshot(snapshot)
        for shard, group in enumerate(replicas.groups):
            for replica in group.replicas:
                assert replica.engine_at(1) is snapshot.engines[shard]
        assert replicas.latest_generation == 1

    def test_shard_count_mismatch_raises(self):
        snapshot = make_snapshot(n_shards=3)
        replicas = ReplicaSet(n_shards=2, n_replicas=2)
        with pytest.raises(ValueError, match="shards"):
            replicas.install_snapshot(snapshot)

    def test_kill_restore_emit_events_with_lag(self):
        log = EventLog(clock=FakeClock())
        index = ShardedIndex(n_shards=1)
        replicas = ReplicaSet(n_shards=1, n_replicas=2, event_log=log)
        replicas.install_snapshot(index.rebuild(make_docs(12)))
        replicas.kill(0, 1)
        replicas.install_snapshot(index.rebuild(make_docs(12, "beta")))
        # One more ship while down: the restore event reports the lag
        # the replica had accumulated *before* catching up.
        down = log.events("replica_down")
        assert [event.payload["replica"] for event in down] == [
            "shard0/r1"
        ]
        replicas.restore(0, 1)
        restored = log.events("replica_restored")
        assert restored[0].payload == {
            "shard": 0, "replica": "shard0/r1", "lag": 1,
        }
        assert replicas.replica(0, 1).generation == 2

    def test_stats_rollup(self):
        replicas = ReplicaSet(n_shards=2, n_replicas=3)
        replicas.install_snapshot(make_snapshot(n_shards=2))
        replicas.kill(1, 0)
        stats = replicas.stats()
        assert stats["n_shards"] == 2
        assert stats["n_replicas"] == 3
        assert stats["groups"][0]["up"] == 3
        assert stats["groups"][1]["up"] == 2
        assert stats["groups"][1]["latest_generation"] == 1


class TestChaosMonkey:
    def test_schedule_is_deterministic(self):
        replicas = ReplicaSet(n_shards=2, n_replicas=3)
        monkey = ChaosMonkey(replicas, period=3.0, down_for=1.5)
        monkey.tick(2.9)
        assert monkey.kills == 0
        monkey.tick(3.0)
        assert monkey.kills == 1
        assert monkey.victim == 0
        for group in replicas.groups:
            assert not group.replicas[0].up
        monkey.tick(4.4)
        assert monkey.restores == 0  # restore due at 4.5
        monkey.tick(4.5)
        assert monkey.restores == 1
        assert monkey.victim is None
        for group in replicas.groups:
            assert group.replicas[0].up

    def test_victim_rotates_across_cycles(self):
        replicas = ReplicaSet(n_shards=1, n_replicas=3)
        monkey = ChaosMonkey(replicas, period=1.0, down_for=0.5)
        victims = []
        for cycle in range(1, 5):
            monkey.tick(float(cycle))
            victims.append(monkey.victim)
            monkey.tick(cycle + 0.5)
        assert victims == [0, 1, 2, 0]

    def test_big_jump_applies_whole_backlog(self):
        """A single late tick catches up kills *and* restores in order."""
        replicas = ReplicaSet(n_shards=1, n_replicas=2)
        monkey = ChaosMonkey(replicas, period=1.0, down_for=0.5)
        monkey.tick(10.0)
        # Every earlier cycle resolved (kill then restore); only the
        # cycle due at t=10 is still holding its victim down.
        assert monkey.kills == monkey.restores + 1
        assert monkey.victim is not None

    def test_finish_restores_the_last_victim(self):
        replicas = ReplicaSet(n_shards=2, n_replicas=2)
        monkey = ChaosMonkey(replicas, period=1.0, down_for=0.9)
        monkey.tick(1.0)
        assert any(
            not replica.up
            for group in replicas.groups
            for replica in group.replicas
        )
        monkey.finish()
        assert monkey.victim is None
        assert all(
            replica.up
            for group in replicas.groups
            for replica in group.replicas
        )

    def test_rejects_bad_schedule(self):
        replicas = ReplicaSet(n_shards=1, n_replicas=2)
        with pytest.raises(ValueError):
            ChaosMonkey(replicas, period=0.0)
        with pytest.raises(ValueError):
            ChaosMonkey(replicas, period=1.0, down_for=1.0)
