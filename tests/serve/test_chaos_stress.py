"""Concurrency stress for the *replicated* portal under chaos.

Reader threads hammer a replicated portal (cache-busting queries, so
every request actually routes) and poll their subscriptions while the
main thread kills and restores a rotating replica of every shard
group, publishes overlapping alert batches, and swaps whole store
generations mid-load.  The invariants:

* no reader ever sees an exception or a non-ok status;
* no subscription is ever delivered the same alert twice;
* every response is a whole generation — results never mix documents
  from two different store generations (the doc-id marker prefix is
  the witness);
* responses carry a consistent generation tag (> 0 once indexed).

Null event log throughout: ``EventLog.emit`` is not thread-safe and
these tests hunt races in the serve layer, not the recorder.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.clock import FakeClock
from repro.serve import AdmissionController, AlertPortal, QueryCache

from tests.serve.test_stress import build_store, make_alert

pytestmark = [pytest.mark.serve, pytest.mark.chaos_serve]

N_READERS = 5
N_ROUNDS = 8
N_REPLICAS = 3
ALERTS_PER_BATCH = 5


def test_kill_restore_under_load_keeps_every_invariant():
    clock = FakeClock()
    portal = AlertPortal(
        build_store(30, "alpha"),
        n_shards=2,
        n_replicas=N_REPLICAS,
        clock=clock,
        admission=AdmissionController(
            rate=1e9, burst=1e9, max_pending=256, clock=clock
        ),
        cache=QueryCache(ttl=1e9, clock=clock),
        max_workers=4,
    )
    portal.refresh()

    subscriptions = [
        portal.subscribe(f"analyst-{i}") for i in range(N_READERS)
    ]
    errors: list[BaseException] = []
    bad_statuses: list[str] = []
    torn: list[set] = []
    bad_generations: list[int] = []
    delivered: dict[str, list[str]] = {
        sub: [] for sub in subscriptions
    }
    stop = threading.Event()

    def reader(sub: str) -> None:
        try:
            turn = 0
            while not stop.is_set():
                turn += 1
                # Unique per turn: a cache hit would skip the router,
                # and the router is what this test is aiming at.
                response = portal.query(
                    sub, f"acquire merger {sub} t{turn}", top_k=50
                )
                if response.status not in ("ok", "stale"):
                    bad_statuses.append(response.status)
                if response.results and response.generation < 1:
                    bad_generations.append(response.generation)
                prefixes = {
                    result.doc_key.split("-")[0]
                    for result in response.results
                }
                if len(prefixes) > 1:
                    torn.append(prefixes)
                delivered[sub].extend(
                    alert.alert_id
                    for alert in portal.poll_alerts(sub)
                )
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(sub,))
        for sub in subscriptions
    ]
    with portal:
        for thread in threads:
            thread.start()
        try:
            counter = 0
            for round_n in range(N_ROUNDS):
                victim = round_n % N_REPLICAS
                for shard in range(2):
                    portal.kill_replica(shard, victim)
                # Overlapping batches: half of each repeats the last,
                # so publish() must dedupe under reader contention.
                batch = [
                    make_alert(counter - 2 + j)
                    for j in range(ALERTS_PER_BATCH)
                    if counter - 2 + j >= 0
                ]
                counter += ALERTS_PER_BATCH - 2
                portal.publish(batch)
                # A whole new store generation ships while one
                # replica of every group is down and readers route.
                marker = "alpha" if round_n % 2 else "beta"
                portal.store = build_store(30, marker)
                portal.refresh()
                for shard in range(2):
                    portal.restore_replica(shard, victim)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    assert errors == []
    assert bad_statuses == []
    assert bad_generations == []
    assert torn == []
    for sub, alert_ids in delivered.items():
        assert len(alert_ids) == len(set(alert_ids)), (
            f"duplicate alert delivered to {sub}"
        )
    # Every kill was healed: the run ends with the cluster whole.
    for group in portal.replicas.stats()["groups"]:
        assert group["up"] == group["n_replicas"]
        assert group["max_lag"] == 0
