"""AlertPortal: the query path, overload degradation, subscriptions."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock
from repro.obs.events import EventLog
from repro.obs.export import (
    derive_gauges,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.tracer import Tracer
from repro.gather.store import DocumentStore, StoredDocument
from repro.serve import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_STALE,
    AdmissionController,
    AlertPortal,
    QueryCache,
)


def build_store(n: int = 20) -> DocumentStore:
    store = DocumentStore()
    for i in range(n):
        store.add(StoredDocument(
            doc_id=f"doc-{i:03d}",
            url=f"http://news-{i % 3}.example/{i}",
            title=f"story {i}",
            text=(f"Acme agreed to acquire Widgets unit {i} in a "
                  f"merger worth millions"),
        ))
    return store


@pytest.fixture
def portal():
    clock = FakeClock()
    portal = AlertPortal(
        build_store(),
        n_shards=3,
        clock=clock,
        admission=AdmissionController(
            rate=1000.0, burst=1000.0, max_pending=16, clock=clock
        ),
        cache=QueryCache(ttl=100.0, clock=clock),
    )
    portal.refresh()
    yield portal
    portal.close()


class TestQueryPath:
    def test_fresh_query_hits_the_index(self, portal):
        response = portal.query("analyst-1", '"agreed to acquire"')
        assert response.status == STATUS_OK
        assert response.ok and not response.cached
        assert response.generation == 1
        assert len(response.results) == 10

    def test_repeat_query_is_cached(self, portal):
        first = portal.query("analyst-1", "merger")
        second = portal.query("analyst-2", "merger")
        assert not first.cached and second.cached
        assert second.results == first.results

    def test_zero_term_query_is_empty_not_an_error(self, portal):
        response = portal.query("analyst-1", "!!!")
        assert response.status == STATUS_OK
        assert response.results == ()

    def test_refresh_invalidates_cache(self, portal):
        portal.query("analyst-1", "merger")
        portal.store.add(StoredDocument(
            doc_id="fresh", url="http://new.example/1", title="",
            text="Globex agreed to acquire Initech in a merger",
        ))
        assert portal.refresh() == 2
        response = portal.query("analyst-1", "merger")
        assert not response.cached  # old generation entry dropped
        assert response.generation == 2

    def test_deadline_in_the_past(self, portal):
        response = portal.query(
            "analyst-1", "merger", timeout=-1.0
        )
        assert response.status == "deadline_exceeded"


class TestOverload:
    """Backpressure acceptance: Rejected values, no exceptions."""

    def _overloaded_portal(self, tracer=None, stale=True):
        clock = FakeClock()
        portal = AlertPortal(
            build_store(),
            clock=clock,
            serve_stale_on_overload=stale,
            admission=AdmissionController(
                rate=1000.0, burst=1000.0, max_pending=0,
                clock=clock, tracer=tracer,
            ),
            cache=QueryCache(ttl=100.0, clock=clock),
            tracer=tracer,
        )
        portal.refresh()
        return portal

    def test_queue_full_rejects_without_exceptions(self):
        tracer = Tracer()
        with self._overloaded_portal(tracer) as portal:
            responses = [
                portal.query("c", f"merger {i}") for i in range(25)
            ]
        assert all(r.status == STATUS_REJECTED for r in responses)
        assert all(r.reason == "queue_full" for r in responses)
        assert portal.admission.pending == 0  # no unbounded growth
        assert tracer.registry.counters["serve.rejected"] == 25

    def test_rejected_counter_reaches_prometheus_export(self):
        tracer = Tracer()
        with self._overloaded_portal(tracer) as portal:
            for _ in range(5):
                portal.query("c", "merger")
            text = prometheus_text(
                tracer.registry,
                gauges=derive_gauges(tracer.registry, portal=portal),
            )
        samples = parse_prometheus_text(text)
        assert samples[("repro_serve_rejected", ())] > 0
        assert samples[("repro_serve_rejection_rate", ())] == 1.0
        assert samples[("repro_serve_queue_depth", ())] == 0

    def test_overload_degrades_to_stale_cache(self):
        clock = FakeClock()
        admission = AdmissionController(
            rate=1000.0, burst=1000.0, max_pending=16, clock=clock
        )
        portal = AlertPortal(
            build_store(),
            clock=clock,
            admission=admission,
            cache=QueryCache(ttl=100.0, clock=clock),
        )
        portal.refresh()
        with portal:
            warm = portal.query("c", "merger")
            assert warm.status == STATUS_OK
            admission.max_pending = 0  # slam the door
            degraded = portal.query("c", "merger")
            assert degraded.status == STATUS_STALE
            assert degraded.results == warm.results
            assert degraded.reason == "queue_full"
            # An uncached query under the same overload is rejected.
            cold = portal.query("c", "unseen terms")
            assert cold.status == STATUS_REJECTED

    def test_rejection_events_recorded(self):
        log = EventLog()
        clock = FakeClock()
        portal = AlertPortal(
            build_store(),
            clock=clock,
            admission=AdmissionController(
                rate=1000.0, burst=1000.0, max_pending=0, clock=clock
            ),
            event_log=log,
        )
        portal.refresh()
        with portal:
            portal.query("tenant-9", "merger")
        [event] = log.events("query_rejected")
        assert event.payload == {
            "client_id": "tenant-9", "reason": "queue_full",
        }


class TestSubscriptions:
    def test_filtering_and_exactly_once_delivery(self):
        """End to end: pump() drains AlertService into subscriptions."""
        from repro.core.alerts import AlertService
        from repro.core.etap import Etap, EtapConfig
        from repro.corpus.evolve import WebEvolver
        from repro.corpus.generator import CorpusConfig
        from repro.corpus.web import build_web

        web = build_web(300, CorpusConfig(seed=23))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=50, negative_sample_size=600
            ),
        )
        etap.gather()
        etap.train()
        service = AlertService(etap, threshold=0.2)
        portal = AlertPortal(etap.store, alert_service=service)
        portal.refresh()
        with portal:
            everything = portal.subscribe("generalist")
            ma_only = portal.subscribe(
                "ma-desk", drivers=("mergers_acquisitions",)
            )
            WebEvolver(web, CorpusConfig(seed=24)).advance(40)
            portal.pump()
            all_alerts = portal.poll_alerts(everything)
            ma_alerts = portal.poll_alerts(ma_only)
            assert all_alerts  # the evolved web produced alerts
            assert {a.driver_id for a in ma_alerts} <= {
                "mergers_acquisitions"
            }
            assert len(ma_alerts) <= len(all_alerts)
            # Re-poll: nothing new, nothing duplicated.
            assert portal.poll_alerts(everything) == []
            # Republishing the same alerts is idempotent.
            assert portal.publish(all_alerts) == 0
            assert portal.poll_alerts(everything) == []

    def test_company_filter(self):
        from repro.core.alerts import Alert
        from repro.core.ranking import TriggerEvent
        from repro.core.training import AnnotatedSnippet
        from repro.core.snippets import Snippet
        from repro.text.annotator import AnnotatedText

        def alert(alert_id, companies):
            snippet = Snippet(
                doc_id=alert_id, index=0, sentences=("t.",)
            )
            item = AnnotatedSnippet(
                snippet=snippet,
                annotated=AnnotatedText(
                    text="t.", tokens=(), entities=()
                ),
            )
            return Alert(
                cycle=1, driver_id="mergers_acquisitions",
                alert_id=alert_id,
                event=TriggerEvent(
                    driver_id="mergers_acquisitions", item=item,
                    score=0.9, companies=companies,
                ),
            )

        portal = AlertPortal(build_store(2))
        portal.refresh()
        with portal:
            acme_desk = portal.subscribe(
                "acme-watcher", companies=("Acme",)
            )
            portal.publish([
                alert("a1", ("acme",)),
                alert("a2", ("globex",)),
            ])
            delivered = portal.poll_alerts(acme_desk)
            assert [a.alert_id for a in delivered] == ["a1"]

    def test_unknown_subscription_raises_keyerror(self):
        portal = AlertPortal(build_store(2))
        with portal:
            with pytest.raises(KeyError):
                portal.poll_alerts("sub-9999")

    def test_unsubscribe(self):
        portal = AlertPortal(build_store(2))
        with portal:
            sub = portal.subscribe("someone")
            portal.unsubscribe(sub)
            with pytest.raises(KeyError):
                portal.poll_alerts(sub)

    def test_pump_without_service_raises(self):
        portal = AlertPortal(build_store(2))
        with portal:
            with pytest.raises(RuntimeError):
                portal.pump()


class TestStats:
    def test_stats_snapshot(self, portal):
        portal.query("c", "merger")
        portal.query("c", "merger")
        stats = portal.stats()
        assert stats["generation"] == 1
        assert stats["n_docs"] == 20
        assert sum(stats["shard_docs"]) == 20
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["queue_depth"] == 0
