"""Concurrency stress: readers hammer the portal through snapshot swaps.

Marked ``serve`` so CI can run the serving suite on its own. Uses the
null event log throughout: ``EventLog.emit`` is not thread-safe, and
these tests exist to catch races in the serve layer, not to time the
recorder.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.alerts import Alert, idempotency_key
from repro.core.ranking import TriggerEvent
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.gather.store import DocumentStore, StoredDocument
from repro.obs.clock import FakeClock
from repro.serve import AdmissionController, AlertPortal, QueryCache
from repro.text.annotator import AnnotatedText

pytestmark = pytest.mark.serve

N_READERS = 6
N_SWAPS = 8
ALERT_BATCHES = 10
ALERTS_PER_BATCH = 5


def make_alert(n: int) -> Alert:
    snippet = Snippet(
        doc_id=f"doc-{n:04d}", index=0,
        sentences=(f"Acme acquired unit {n}.",),
    )
    item = AnnotatedSnippet(
        snippet=snippet,
        annotated=AnnotatedText(
            text=snippet.text, tokens=(), entities=()
        ),
    )
    return Alert(
        cycle=1,
        driver_id="mergers_acquisitions",
        alert_id=idempotency_key(
            "mergers_acquisitions", snippet.snippet_id
        ),
        event=TriggerEvent(
            driver_id="mergers_acquisitions", item=item,
            score=0.9, companies=("acme",),
        ),
    )


def build_store(n: int, generation_marker: str = "alpha"):
    store = DocumentStore()
    for i in range(n):
        store.add(StoredDocument(
            doc_id=f"{generation_marker}-{i:04d}",
            url=f"http://site-{i % 5}.example/{i}",
            title=f"story {i}",
            text=(f"Acme {generation_marker} agreed to acquire "
                  f"Widgets unit {i} in a merger"),
        ))
    return store


class TestPortalUnderSwap:
    def test_polling_during_snapshot_swap(self):
        """N threads query + poll while re-indexing; no dupes, no raises.

        Every alert id must be delivered to each subscription at most
        once (the idempotency keys hold under contention), and every
        query must resolve to a whole generation — never an exception.
        """
        clock = FakeClock()
        store = build_store(40)
        portal = AlertPortal(
            store,
            n_shards=4,
            clock=clock,
            admission=AdmissionController(
                rate=1e9, burst=1e9, max_pending=256, clock=clock
            ),
            cache=QueryCache(ttl=1e9, clock=clock),
            max_workers=4,
        )
        portal.refresh()

        subscriptions = [
            portal.subscribe(f"analyst-{i}") for i in range(N_READERS)
        ]
        errors: list[BaseException] = []
        bad_statuses: list[str] = []
        delivered: dict[str, list[str]] = {
            sub: [] for sub in subscriptions
        }
        stop = threading.Event()

        def reader(sub: str) -> None:
            try:
                turn = 0
                while not stop.is_set():
                    turn += 1
                    response = portal.query(sub, f"merger {turn % 7}")
                    if response.status not in ("ok", "stale"):
                        bad_statuses.append(response.status)
                    delivered[sub].extend(
                        alert.alert_id
                        for alert in portal.poll_alerts(sub)
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(sub,))
            for sub in subscriptions
        ]
        with portal:
            for thread in threads:
                thread.start()
            try:
                counter = 0
                for round_n in range(N_SWAPS):
                    # Overlapping batches: half of each batch repeats
                    # the previous one, so publish() must dedupe.
                    batch = [
                        make_alert(counter - 2 + j)
                        for j in range(ALERTS_PER_BATCH)
                        if counter - 2 + j >= 0
                    ]
                    counter += ALERTS_PER_BATCH - 2
                    portal.publish(batch)
                    marker = "alpha" if round_n % 2 else "beta"
                    portal.store = build_store(40, marker)
                    portal.refresh()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()

        assert errors == []
        assert bad_statuses == []
        for sub, alert_ids in delivered.items():
            assert len(alert_ids) == len(set(alert_ids)), (
                f"duplicate alert delivered to {sub}"
            )

    def test_queries_during_swap_see_whole_generations(self):
        """The portal-level view of the shards' atomicity guarantee."""
        clock = FakeClock()
        portal = AlertPortal(
            build_store(30, "alpha"),
            n_shards=4,
            clock=clock,
            admission=AdmissionController(
                rate=1e9, burst=1e9, max_pending=256, clock=clock
            ),
            # Tiny TTL is irrelevant on a fake clock; disable caching
            # effects by keying every query uniquely below instead.
            cache=QueryCache(ttl=1e9, clock=clock),
        )
        portal.refresh()

        torn: list[set] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    response = portal.query(
                        "c", '"agreed to acquire"', top_k=100
                    )
                    prefixes = {
                        result.doc_key.split("-")[0]
                        for result in response.results
                    }
                    if len(prefixes) > 1:
                        torn.append(prefixes)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader) for _ in range(N_READERS)
        ]
        with portal:
            for thread in threads:
                thread.start()
            try:
                for round_n in range(N_SWAPS):
                    marker = "beta" if round_n % 2 == 0 else "alpha"
                    portal.store = build_store(30, marker)
                    portal.refresh()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()

        assert errors == []
        assert torn == []
