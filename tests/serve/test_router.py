"""HedgedRouter: pinning, hedging, breakers, degraded fallbacks."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock
from repro.obs.events import EventLog
from repro.robustness.fetcher import CircuitBreaker
from repro.robustness.faults import _unit
from repro.serve.replication import ReplicaSet
from repro.serve.router import HedgedRouter
from repro.serve.shards import ShardedIndex

QUERIES = [
    "merger acquisition",
    "acme expands factory",
    "hiring spree widgets",
    "new product launch",
    "partnership announcement",
    "quarterly revenue growth",
]


def make_docs(n: int, marker: str = "alpha"):
    return [
        (
            f"{marker}-{i:04d}",
            f"Acme {marker} merger acquisition factory widgets "
            f"product launch partnership revenue number {i}",
            f"title {i}",
        )
        for i in range(n)
    ]


def build_cluster(
    n_shards: int = 2,
    n_replicas: int = 3,
    n_docs: int = 24,
    **router_kwargs,
):
    """A fresh replica set with one installed snapshot + its router."""
    index = ShardedIndex(n_shards=n_shards)
    snapshot = index.rebuild(make_docs(n_docs))
    replicas = ReplicaSet(n_shards=n_shards, n_replicas=n_replicas)
    replicas.install_snapshot(snapshot)
    router_kwargs.setdefault("clock", FakeClock())
    router = HedgedRouter(replicas, **router_kwargs)
    return index, snapshot, replicas, router


def primary_index(router, shard: int, query: str, n_candidates: int):
    """The replica index the router will try first for ``query``."""
    return int(
        _unit(router.seed, "primary", shard, query) * n_candidates
    ) % n_candidates


class TestFaultFreeRouting:
    def test_matches_snapshot_search_exactly(self):
        _, snapshot, _, router = build_cluster()
        for query in QUERIES:
            result = router.route(query, top_k=10)
            assert result.results == tuple(
                snapshot.search(query, top_k=10)
            )
            assert result.generation == snapshot.generation
            assert not result.degraded
            assert result.hedges == 0
            assert result.max_inflight == 1

    def test_advances_the_injected_clock_by_the_latency(self):
        clock = FakeClock()
        _, _, _, router = build_cluster(clock=clock)
        result = router.route(QUERIES[0])
        assert clock.now() == pytest.approx(result.latency)


class TestHedging:
    def test_down_primary_hedges_within_budget(self):
        log = EventLog(clock=FakeClock())
        _, snapshot, replicas, router = build_cluster(
            n_shards=1, event_log=log
        )
        query = QUERIES[0]
        victim = primary_index(router, 0, query, 3)
        replicas.kill(0, victim)
        result = router.route(query, top_k=10)
        # The hedge fires at hedge_after and a healthy replica answers
        # in well under fail_after: the timeout never reaches the tail.
        assert result.hedges == 1
        assert result.max_inflight == 2
        assert (
            router.hedge_after
            < result.latency
            < router.hedge_after + 0.01
        )
        assert result.latency < router.fail_after
        # Degraded it is not: a full-strength answer from a live peer.
        assert not result.degraded
        assert result.results == tuple(snapshot.search(query, top_k=10))
        hedge_events = log.events("query_hedged")
        assert len(hedge_events) == 1
        payload = hedge_events[0].payload
        assert payload["query"] == query
        assert payload["primary"] == f"shard0/r{victim}"

    def test_serial_failover_eats_the_timeout_when_unhedged(self):
        _, snapshot, replicas, router = build_cluster(
            n_shards=1, hedging=False
        )
        query = QUERIES[0]
        victim = primary_index(router, 0, query, 3)
        replicas.kill(0, victim)
        result = router.route(query, top_k=10)
        # Same storm, no hedge: the dead primary costs fail_after in
        # full before the failover lands — this gap is the whole bench.
        assert result.hedges == 0
        assert result.max_inflight == 1
        assert result.latency > router.fail_after
        assert result.results == tuple(snapshot.search(query, top_k=10))

    def test_fast_failover_does_not_spend_the_hedge(self):
        """A NACK (stale replica) fails over serially, hedge unspent,
        and never counts against the replica's breaker."""
        index, _, replicas, router = build_cluster(n_shards=1)
        replicas.kill(0, 0)
        replicas.install_snapshot(index.rebuild(make_docs(24, "beta")))
        replicas.restore(0, 0, catch_up=False)
        stale = replicas.replica(0, 0)
        assert stale.generation == 1
        # A query whose rotation picks the stale replica first.
        query = next(
            q
            for q in (f"merger acquisition v{i}" for i in range(64))
            if primary_index(router, 0, q, 3) == 0
        )
        result = router.route(query)
        assert result.generation == 2
        assert not result.degraded
        assert result.hedges == 0
        assert result.max_inflight == 1
        assert result.attempts == 2  # NACK, then a serving peer
        assert stale.breaker.failures == 0
        assert stale.breaker.state == CircuitBreaker.CLOSED


class TestDegradedReads:
    def test_whole_group_down_serves_from_shipping_log(self):
        log = EventLog(clock=FakeClock())
        _, snapshot, replicas, router = build_cluster(event_log=log)
        for index in range(3):
            replicas.kill(0, index)
        query = QUERIES[0]
        result = router.route(query, top_k=10)
        # Degraded, flagged, and still *complete*: shard 0 answers
        # from the shipping log at the same pinned generation.
        assert result.degraded
        assert result.generation == snapshot.generation
        assert result.results == tuple(snapshot.search(query, top_k=10))
        degraded = log.events("degraded_read")
        assert [event.payload["source"] for event in degraded] == [
            "replica_group"
        ]
        assert degraded[0].payload["shard"] == 0

    def test_stale_group_pins_the_whole_response_back(self):
        log = EventLog(clock=FakeClock())
        index, old_snapshot, replicas, router = build_cluster(
            n_shards=2, event_log=log
        )
        # Group 0 misses generation 2 entirely, then comes back stale.
        for replica_index in range(3):
            replicas.kill(0, replica_index)
        replicas.install_snapshot(index.rebuild(make_docs(24, "beta")))
        for replica_index in range(3):
            replicas.restore(0, replica_index, catch_up=False)
        query = QUERIES[0]
        result = router.route(query, top_k=10)
        # Generation pinning: *both* shards answer at generation 1 —
        # never a half-old, half-new merge — and the read is flagged.
        assert result.generation == 1
        assert result.degraded
        assert result.results == tuple(
            old_snapshot.search(query, top_k=10)
        )
        sources = [
            event.payload["source"]
            for event in log.events("degraded_read")
        ]
        assert sources == ["stale_replica"]


class TestBreakers:
    def test_repeated_timeouts_open_the_breaker_and_exclude(self):
        log = EventLog(clock=FakeClock())
        _, _, replicas, router = build_cluster(
            n_shards=1, hedging=False, event_log=log
        )
        query = QUERIES[0]
        victim_index = primary_index(router, 0, query, 3)
        victim = replicas.replica(0, victim_index)
        replicas.kill(0, victim_index)
        for _ in range(victim.breaker.failure_threshold):
            result = router.route(query)
            assert result.latency > router.fail_after
        assert victim.breaker.state == CircuitBreaker.OPEN
        opened = log.events("breaker_open")
        assert [event.payload["host"] for event in opened] == [
            victim.replica_id
        ]
        # Discovery paid for: the dead replica is no longer dispatched
        # to, so the same query now clears in service time.
        result = router.route(query)
        assert result.latency < router.hedge_after
        assert result.attempts == 1

    def test_restore_closes_the_breaker_and_readmits(self):
        _, _, replicas, router = build_cluster(
            n_shards=1, hedging=False
        )
        query = QUERIES[0]
        victim_index = primary_index(router, 0, query, 3)
        victim = replicas.replica(0, victim_index)
        replicas.kill(0, victim_index)
        for _ in range(victim.breaker.failure_threshold):
            router.route(query)
        assert victim.breaker.state == CircuitBreaker.OPEN
        replicas.restore(0, victim_index)
        assert victim.breaker.state == CircuitBreaker.CLOSED
        result = router.route(query)
        assert result.latency < router.hedge_after


class TestValidation:
    def test_rejects_bad_deadlines(self):
        replicas = ReplicaSet(n_shards=1, n_replicas=2)
        with pytest.raises(ValueError):
            HedgedRouter(replicas, hedge_after=0.0)
        with pytest.raises(ValueError):
            HedgedRouter(replicas, hedge_after=0.5, fail_after=0.5)
