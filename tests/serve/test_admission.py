"""Admission control: token-bucket bounds and queue backpressure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.clock import FakeClock
from repro.serve.admission import (
    QUEUE_FULL,
    RATE_LIMITED,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=FakeClock())
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_with_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0.5)

    @settings(max_examples=80, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=50.0),
        burst=st.floats(min_value=1.0, max_value=20.0),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=1, max_size=50,
        ),
    )
    def test_never_admits_above_rate_plus_burst(self, rate, burst,
                                                steps):
        """Over any window: admissions <= burst + rate * elapsed."""
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admitted = 0
        elapsed = 0.0
        for step in steps:
            clock.advance(step)
            elapsed += step
            if bucket.try_acquire():
                admitted += 1
            # The bound must hold at every instant, not just the end.
            assert admitted <= burst + rate * elapsed + 1e-6


class TestAdmissionController:
    def test_admit_release_cycle(self):
        controller = AdmissionController(
            rate=100.0, burst=10.0, max_pending=2, clock=FakeClock()
        )
        first = controller.admit("c1")
        second = controller.admit("c1")
        assert first and second
        assert controller.pending == 2
        third = controller.admit("c1")
        assert not third
        assert third.reason == QUEUE_FULL
        controller.release()
        assert controller.admit("c1")

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=2.0, max_pending=100, clock=clock
        )
        assert controller.admit("a") and controller.admit("a")
        rejected = controller.admit("a")
        assert not rejected and rejected.reason == RATE_LIMITED
        # A different tenant still has its own full bucket.
        assert controller.admit("b")

    def test_rejection_is_a_value_not_an_exception(self):
        controller = AdmissionController(
            rate=100.0, burst=100.0, max_pending=0, clock=FakeClock()
        )
        for _ in range(50):  # bounded: pending never grows
            decision = controller.admit("c")
            assert not decision.admitted
            assert decision.reason == QUEUE_FULL
        assert controller.pending == 0

    def test_rejection_counters(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        controller = AdmissionController(
            rate=100.0, burst=1.0, max_pending=0,
            clock=FakeClock(), tracer=tracer,
        )
        controller.admit("c")  # queue_full
        controller.admit("c")  # rate_limited
        counters = tracer.registry.counters
        assert counters["serve.rejected"] == 2
        assert counters[f"serve.rejected[{QUEUE_FULL}]"] == 1
        assert counters[f"serve.rejected[{RATE_LIMITED}]"] == 1

    def test_unbalanced_release_raises(self):
        controller = AdmissionController(clock=FakeClock())
        with pytest.raises(RuntimeError):
            controller.release()

    @settings(max_examples=50, deadline=None)
    @given(
        max_pending=st.integers(min_value=0, max_value=5),
        ops=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    def test_pending_never_exceeds_bound(self, max_pending, ops):
        """admit/release interleavings keep pending in [0, max]."""
        controller = AdmissionController(
            rate=1e6, burst=1e6, max_pending=max_pending,
            clock=FakeClock(),
        )
        held = 0
        for is_admit in ops:
            if is_admit:
                if controller.admit("c"):
                    held += 1
            elif held:
                controller.release()
                held -= 1
            assert 0 <= controller.pending <= max_pending
            assert controller.pending == held


class TestQuotas:
    def make(self, quotas, max_pending=8):
        return AdmissionController(
            rate=1e9, burst=1e9, max_pending=max_pending,
            clock=FakeClock(), quotas=quotas,
        )

    def test_quota_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            self.make({"a": 1.5})
        with pytest.raises(ValueError):
            self.make({"a": -0.1})

    def test_reservations_must_fit_the_queue(self):
        with pytest.raises(ValueError):
            self.make({"a": 1.0, "b": 1.0})

    def test_reserved_of_rounds_down_to_slots(self):
        controller = self.make({"a": 0.25, "b": 0.3})
        assert controller.reserved_of("a") == 2
        assert controller.reserved_of("b") == 2  # floor(0.3 * 8)
        assert controller.reserved_of("nobody") == 0

    def test_majority_cannot_take_the_reserved_floor(self):
        """One tenant fills shared + its own slots; the other tenant's
        reservation is still there for it."""
        controller = self.make({"a": 0.25, "b": 0.25})
        admitted_b = sum(
            1 for _ in range(20) if controller.admit("b")
        )
        # b fills its 2 reserved slots plus all 4 shared ones.
        assert admitted_b == 6
        assert controller.pending == 6
        # a's two reserved slots survived the flood.
        assert controller.admit("a")
        assert controller.admit("a")
        assert not controller.admit("a")
        assert controller.pending_of("a") == 2

    def test_release_frees_the_right_tenant_slot(self):
        controller = self.make({"a": 0.25, "b": 0.25})
        for _ in range(6):
            assert controller.admit("b")
        assert not controller.admit("b")
        controller.release("b")
        assert controller.pending_of("b") == 5
        assert controller.admit("b")

    def test_unquotaed_clients_share_the_unreserved_slots(self):
        controller = self.make({"a": 0.5})  # 4 reserved, 4 shared
        admitted = sum(1 for _ in range(10) if controller.admit("c"))
        assert admitted == 4
        # The reserved tenant is untouched by the stranger's burst.
        assert all(controller.admit("a") for _ in range(4))
