"""WorkerPool: coalescing, deadlines, and error containment."""

from __future__ import annotations

import threading

import pytest

from repro.obs.clock import FakeClock
from repro.obs.tracer import Tracer
from repro.serve.workers import DEADLINE_EXCEEDED, ERROR, OK, WorkerPool


class TestExecution:
    def test_runs_the_worker_fn(self):
        with WorkerPool(lambda key: key * 2, max_workers=2) as pool:
            outcome = pool.execute("ab")
            assert outcome.ok
            assert outcome.value == "abab"

    def test_errors_become_outcomes(self):
        def boom(key):
            raise ValueError("bad query")

        tracer = Tracer()
        with WorkerPool(boom, max_workers=1, tracer=tracer) as pool:
            outcome = pool.execute("k")
            assert outcome.status == ERROR
            assert "ValueError: bad query" in outcome.error
        assert tracer.registry.counters["serve.worker_errors"] == 1

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(lambda key: key)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("k")


class TestDeadlines:
    def test_past_deadline_skips_work(self):
        clock = FakeClock(start=100.0)
        ran = []

        def worker(key):
            ran.append(key)
            return key

        with WorkerPool(worker, clock=clock) as pool:
            outcome = pool.execute("k", deadline=99.0)
        assert outcome.status == DEADLINE_EXCEEDED
        assert ran == []

    def test_future_deadline_runs(self):
        clock = FakeClock(start=100.0)
        with WorkerPool(lambda key: key, clock=clock) as pool:
            outcome = pool.execute("k", deadline=101.0)
        assert outcome.status == OK


class TestCoalescing:
    def test_identical_inflight_keys_share_one_execution(self):
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_worker(key):
            calls.append(key)
            started.set()
            release.wait(timeout=5.0)
            return key

        tracer = Tracer()
        pool = WorkerPool(slow_worker, max_workers=4, tracer=tracer)
        try:
            first = pool.submit("same")
            assert started.wait(timeout=5.0)
            second = pool.submit("same")
            third = pool.submit("same")
            assert second is first and third is first
            release.set()
            outcome = first.result(timeout=5.0)
            assert outcome.ok
            assert outcome.joiners == 3
            assert calls == ["same"]
            assert tracer.registry.counters["serve.coalesced"] == 2
        finally:
            pool.shutdown()

    def test_distinct_keys_do_not_coalesce(self):
        with WorkerPool(lambda key: key, max_workers=2) as pool:
            first = pool.submit("a")
            second = pool.submit("b")
            assert first is not second
            assert first.result().value == "a"
            assert second.result().value == "b"

    def test_completed_key_runs_again(self):
        counter = {"n": 0}

        def worker(key):
            counter["n"] += 1
            return counter["n"]

        with WorkerPool(worker, max_workers=1) as pool:
            assert pool.execute("k").value == 1
            assert pool.execute("k").value == 2  # not coalesced
