"""ShardedIndex: partitioning, parity, and the atomic snapshot swap."""

from __future__ import annotations

import threading

import pytest

from repro.gather.store import DocumentStore, StoredDocument
from repro.obs.events import EventLog
from repro.search.engine import build_engine_from_pairs
from repro.serve.shards import IndexSnapshot, ShardedIndex, shard_of


def make_docs(n: int, marker: str = "alpha"):
    return [
        (
            f"doc-{i:04d}",
            f"Acme {marker} acquired Widgets number {i} in a merger",
            f"title {i}",
        )
        for i in range(n)
    ]


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for key in ("a", "doc-17", "http://x.example/p"):
            first = shard_of(key, 8)
            assert first == shard_of(key, 8)
            assert 0 <= first < 8

    def test_single_shard(self):
        assert shard_of("anything", 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of("a", 0)

    def test_reasonable_balance(self):
        counts = [0] * 4
        for i in range(2000):
            counts[shard_of(f"doc-{i}", 4)] += 1
        assert min(counts) > 300  # hash partitioning, not clustering


class TestRebuild:
    def test_empty_index_answers(self):
        index = ShardedIndex(n_shards=3)
        assert index.search("anything") == []
        assert index.generation == 0

    def test_generation_advances(self):
        index = ShardedIndex(n_shards=2)
        index.rebuild(make_docs(10))
        assert index.generation == 1
        index.rebuild(make_docs(10))
        assert index.generation == 2

    def test_docs_land_on_their_hash_shard(self):
        index = ShardedIndex(n_shards=4)
        snapshot = index.rebuild(make_docs(50))
        assert snapshot.n_docs == 50
        assert sum(snapshot.shard_sizes()) == 50
        for doc_key, _, _ in make_docs(50):
            shard = shard_of(doc_key, 4)
            engine = snapshot.engines[shard]
            assert engine.index.doc_length(doc_key) > 0

    def test_rebuild_from_store(self):
        store = DocumentStore()
        for doc_key, text, title in make_docs(12):
            store.add(StoredDocument(doc_key, f"http://x/{doc_key}",
                                     title, text))
        index = ShardedIndex(n_shards=3)
        snapshot = index.rebuild_from_store(store)
        assert snapshot.n_docs == 12

    def test_swap_event_emitted(self):
        log = EventLog()
        index = ShardedIndex(n_shards=2, event_log=log)
        index.rebuild(make_docs(5))
        [event] = log.events("snapshot_swapped")
        assert event.payload == {
            "generation": 1, "n_docs": 5, "n_shards": 2,
        }


class TestSearchParity:
    def test_same_documents_as_flat_engine(self):
        docs = make_docs(40)
        flat = build_engine_from_pairs(
            [(key, text) for key, text, _ in docs]
        )
        index = ShardedIndex(n_shards=4)
        index.rebuild(docs)
        for query in ('"acme alpha"', "merger", '"number 7"'):
            flat_keys = {r.doc_key for r in flat.search(query, top_k=100)}
            shard_keys = {
                r.doc_key for r in index.search(query, top_k=100)
            }
            assert shard_keys == flat_keys

    def test_top_k_truncation_and_order(self):
        index = ShardedIndex(n_shards=4)
        index.rebuild(make_docs(40))
        results = index.search("merger", top_k=5)
        assert len(results) == 5
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_zero_top_k(self):
        index = ShardedIndex(n_shards=2)
        index.rebuild(make_docs(5))
        assert index.search("merger", top_k=0) == []


class TestAtomicSwap:
    """Zero-downtime re-index: readers never see a torn generation."""

    def test_concurrent_queries_see_whole_generations(self):
        index = ShardedIndex(n_shards=4)
        index.rebuild(make_docs(30, marker="alpha"))
        alpha_keys = {key for key, _, _ in make_docs(30)}
        beta_docs = [
            (f"beta-{i:04d}",
             f"Acme beta acquired Widgets number {i} in a merger",
             "")
            for i in range(30)
        ]
        beta_keys = {key for key, _, _ in beta_docs}

        torn: list[set] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    snapshot = index.snapshot
                    hits = {
                        r.doc_key
                        for r in snapshot.search("merger", top_k=100)
                    }
                    if not (
                        hits <= alpha_keys or hits <= beta_keys
                    ):
                        torn.append(hits)
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(5):
            index.rebuild(beta_docs)
            index.rebuild(make_docs(30, marker="alpha"))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert not torn

    def test_inflight_snapshot_survives_swap(self):
        index = ShardedIndex(n_shards=2)
        index.rebuild(make_docs(10))
        held = index.snapshot
        index.rebuild(make_docs(3))
        # The held generation still answers fully even after the swap.
        assert isinstance(held, IndexSnapshot)
        assert held.n_docs == 10
        assert len(held.search("merger", top_k=100)) == 10
        assert index.snapshot.n_docs == 3
