"""QueryCache: LRU/TTL/generation semantics, exactly, on a fake clock."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.clock import FakeClock
from repro.serve.cache import MISS, QueryCache, cache_key


@pytest.fixture
def clock():
    return FakeClock()


class TestBasics:
    def test_miss_then_hit(self, clock):
        cache = QueryCache(ttl=10.0, clock=clock)
        key = cache_key("new ceo", 10)
        assert cache.get(key, generation=1) is MISS
        cache.put(key, ["r1"], generation=1)
        assert cache.get(key, generation=1) == ["r1"]
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_key_normalization(self):
        assert cache_key("  new   ceo ", 5) == cache_key("new ceo", 5)
        assert cache_key("new ceo", 5) != cache_key("new ceo", 6)

    def test_replace_updates_value(self, clock):
        cache = QueryCache(clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "old", generation=1)
        cache.put(key, "new", generation=1)
        assert cache.get(key, generation=1) == "new"
        assert len(cache) == 1


class TestTtl:
    def test_expires_exactly_at_ttl(self, clock):
        cache = QueryCache(ttl=5.0, clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        clock.advance(4.999)
        assert cache.get(key, generation=1) == "v"
        clock.advance(0.001)
        assert cache.get(key, generation=1) is MISS
        assert cache.stats().expirations == 1

    def test_expired_entry_is_dropped(self, clock):
        cache = QueryCache(ttl=1.0, clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        clock.advance(2.0)
        cache.get(key, generation=1)
        assert len(cache) == 0


class TestLru:
    def test_entry_bound_evicts_oldest(self, clock):
        cache = QueryCache(max_entries=3, clock=clock)
        keys = [cache_key(f"q{i}", 1) for i in range(4)]
        for key in keys:
            cache.put(key, "v", generation=1)
        assert len(cache) == 3
        assert cache.get(keys[0], generation=1) is MISS
        assert cache.stats().evictions == 1

    def test_recent_access_protects_entry(self, clock):
        cache = QueryCache(max_entries=3, clock=clock)
        keys = [cache_key(f"q{i}", 1) for i in range(3)]
        for key in keys:
            cache.put(key, "v", generation=1)
        cache.get(keys[0], generation=1)  # refresh q0
        cache.put(cache_key("q3", 1), "v", generation=1)
        assert cache.get(keys[0], generation=1) == "v"
        assert cache.get(keys[1], generation=1) is MISS

    def test_cost_bound_evicts(self, clock):
        cache = QueryCache(max_entries=100, max_cost=10.0, clock=clock)
        cache.put(cache_key("a", 1), "v", generation=1, cost=6.0)
        cache.put(cache_key("b", 1), "v", generation=1, cost=6.0)
        assert len(cache) == 1
        assert cache.total_cost == 6.0

    def test_oversized_entry_not_admitted(self, clock):
        cache = QueryCache(max_cost=10.0, clock=clock)
        cache.put(cache_key("big", 1), "v", generation=1, cost=11.0)
        assert len(cache) == 0


class TestGenerations:
    def test_wrong_generation_is_a_miss(self, clock):
        cache = QueryCache(clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        assert cache.get(key, generation=2) is MISS
        assert len(cache) == 0  # lazily dropped
        assert cache.stats().invalidations == 1

    def test_eager_invalidation(self, clock):
        cache = QueryCache(clock=clock)
        for i in range(5):
            cache.put(cache_key(f"q{i}", 1), "v", generation=1)
        cache.put(cache_key("fresh", 1), "v", generation=2)
        dropped = cache.invalidate_other_generations(2)
        assert dropped == 5
        assert len(cache) == 1
        assert cache.get(cache_key("fresh", 1), generation=2) == "v"


class TestStaleReads:
    def test_stale_ignores_ttl_and_generation(self, clock):
        cache = QueryCache(ttl=1.0, clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        clock.advance(100.0)
        assert cache.get_stale(key) == "v"
        stats = cache.stats()
        assert stats.stale_reads == 1
        assert stats.hits == 0  # stale reads never inflate hit rate

    def test_stale_miss(self, clock):
        cache = QueryCache(clock=clock)
        assert cache.get_stale(cache_key("absent", 1)) is MISS

    def test_stale_serve_emits_exactly_one_degraded_read(self, clock):
        """Regression: the stale path used to bypass the flight
        recorder, so a portal living off expired answers was invisible
        to the degraded-reads SLO.  One stale serve, one event."""
        from repro.obs.events import EventLog

        log = EventLog(clock=clock)
        cache = QueryCache(ttl=1.0, clock=clock, event_log=log)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        clock.advance(100.0)
        assert cache.get_stale(key) == "v"
        events = log.events("degraded_read")
        assert len(events) == 1
        assert events[0].payload == {"source": "query_cache"}
        # And again: each stale serve is its own event, exactly one.
        assert cache.get_stale(key) == "v"
        assert len(log.events("degraded_read")) == 2

    def test_stale_miss_emits_nothing(self, clock):
        from repro.obs.events import EventLog

        log = EventLog(clock=clock)
        cache = QueryCache(clock=clock, event_log=log)
        assert cache.get_stale(cache_key("absent", 1)) is MISS
        assert log.events("degraded_read") == []

    def test_fresh_hit_emits_nothing(self, clock):
        from repro.obs.events import EventLog

        log = EventLog(clock=clock)
        cache = QueryCache(ttl=10.0, clock=clock, event_log=log)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        assert cache.get(key, generation=1) == "v"
        assert log.events("degraded_read") == []


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)
        with pytest.raises(ValueError):
            QueryCache(max_cost=0)
        with pytest.raises(ValueError):
            QueryCache(ttl=0)


# -- property suite ------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "advance", "invalidate"]),
        st.integers(min_value=0, max_value=9),   # key
        st.integers(min_value=1, max_value=3),   # generation
        st.floats(min_value=0.0, max_value=5.0,  # clock step
                  allow_nan=False),
    ),
    max_size=60,
)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, max_entries=st.integers(min_value=1, max_value=6))
    def test_capacity_never_exceeded(self, ops, max_entries):
        clock = FakeClock()
        cache = QueryCache(
            max_entries=max_entries, max_cost=1e9, ttl=10.0,
            clock=clock,
        )
        for op, key_n, generation, step in ops:
            key = cache_key(f"q{key_n}", 1)
            if op == "put":
                cache.put(key, key_n, generation=generation)
            elif op == "get":
                cache.get(key, generation=generation)
            elif op == "advance":
                clock.advance(step)
            else:
                cache.invalidate_other_generations(generation)
            assert len(cache) <= max_entries

    @settings(max_examples=60, deadline=None)
    @given(
        ttl=st.floats(min_value=0.5, max_value=20.0),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
            min_size=1, max_size=20,
        ),
    )
    def test_ttl_expiry_monotone_on_tick_clock(self, ttl, steps):
        """Once expired, an entry stays expired as time only advances."""
        clock = FakeClock()
        cache = QueryCache(ttl=ttl, clock=clock)
        key = cache_key("q", 1)
        cache.put(key, "v", generation=1)
        inserted_at = 0.0
        seen_expired = False
        for step in steps:
            clock.advance(step)
            value = cache.get(key, generation=1)
            expired_now = value is MISS
            if seen_expired:
                assert expired_now  # never resurrects
            seen_expired = seen_expired or expired_now
            expected_expired = (
                clock.now() - inserted_at
            ) >= ttl
            assert expired_now == expected_expired

    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=4),
            ),
            max_size=30,
        ),
        current=st.integers(min_value=1, max_value=4),
    )
    def test_generation_invalidation_empties_stale(self, entries,
                                                   current):
        clock = FakeClock()
        cache = QueryCache(max_entries=64, ttl=100.0, clock=clock)
        for key_n, generation in entries:
            cache.put(
                cache_key(f"q{key_n}", 1), key_n,
                generation=generation,
            )
        cache.invalidate_other_generations(current)
        # Every survivor must be from the current generation: probing
        # any key at `current` either hits or misses, but never
        # triggers another generation invalidation.
        before = cache.stats().invalidations
        for key_n, _ in entries:
            cache.get(cache_key(f"q{key_n}", 1), generation=current)
        assert cache.stats().invalidations == before
