"""Property suite for the replicated read path.

Three invariants the chaos bench leans on, pinned over arbitrary kill
masks, fault profiles, and seeds:

* hedged fan-out never has more than two requests in flight for one
  query (and exactly one when hedging is off);
* with no faults and no kills, the replicated cluster is
  indistinguishable from a single replica — byte-identical results,
  no hedges, never degraded;
* a response that is not flagged ``degraded`` is *exact*: identical
  to the fresh snapshot's own ranking at the latest generation.
  Degraded reads are always tagged — there is no silent staleness.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.clock import FakeClock
from repro.robustness.faults import get_profile
from repro.serve.replication import ReplicaSet
from repro.serve.router import HedgedRouter
from repro.serve.shards import ShardedIndex

N_SHARDS = 2
N_REPLICAS = 3

#: Built once: snapshots are immutable and the engines are shared by
#: reference, so every example installs the same generation onto its
#: own fresh replica set.
SNAPSHOT = ShardedIndex(n_shards=N_SHARDS).rebuild(
    [
        (
            f"alpha-{i:04d}",
            f"Acme merger acquisition factory widgets product "
            f"launch partnership revenue number {i}",
            f"title {i}",
        )
        for i in range(30)
    ]
)

queries = st.integers(min_value=0, max_value=199).map(
    lambda i: f"merger acquisition v{i}"
)
kill_masks = st.frozensets(
    st.tuples(
        st.integers(0, N_SHARDS - 1), st.integers(0, N_REPLICAS - 1)
    ),
    max_size=N_SHARDS * N_REPLICAS,
)
seeds = st.integers(min_value=0, max_value=7)


def fresh_router(
    hedging: bool = True,
    faulty: bool = False,
    seed: int = 0,
    n_replicas: int = N_REPLICAS,
):
    replicas = ReplicaSet(n_shards=N_SHARDS, n_replicas=n_replicas)
    replicas.install_snapshot(SNAPSHOT)
    router = HedgedRouter(
        replicas,
        hedging=hedging,
        fault_profile=get_profile("lossy") if faulty else None,
        seed=seed,
        clock=FakeClock(),
    )
    return replicas, router


def reference(query: str, top_k: int = 10):
    return tuple(SNAPSHOT.search(query, top_k=top_k))


@given(
    query=queries,
    kills=kill_masks,
    hedging=st.booleans(),
    faulty=st.booleans(),
    seed=seeds,
)
@settings(max_examples=60, deadline=None)
def test_never_more_than_two_in_flight(
    query, kills, hedging, faulty, seed
):
    replicas, router = fresh_router(
        hedging=hedging, faulty=faulty, seed=seed
    )
    for shard, index in kills:
        replicas.kill(shard, index)
    result = router.route(query)
    assert result.max_inflight <= 2
    if not hedging:
        assert result.max_inflight == 1
        assert result.hedges == 0


@given(query=queries, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_fault_free_cluster_matches_single_replica(query, seed):
    _, replicated = fresh_router(seed=seed)
    _, single = fresh_router(seed=seed, n_replicas=1)
    multi_result = replicated.route(query)
    single_result = single.route(query)
    assert multi_result.results == single_result.results
    assert multi_result.results == reference(query)
    assert multi_result.generation == SNAPSHOT.generation
    assert not multi_result.degraded
    assert multi_result.hedges == 0


@given(
    query=queries,
    kills=kill_masks,
    hedging=st.booleans(),
    faulty=st.booleans(),
    seed=seeds,
)
@settings(max_examples=60, deadline=None)
def test_non_degraded_responses_are_exact(
    query, kills, hedging, faulty, seed
):
    """Degraded reads are always tagged — the contrapositive: any
    response NOT tagged must be byte-identical to the fresh snapshot's
    own ranking, whatever the storm did."""
    replicas, router = fresh_router(
        hedging=hedging, faulty=faulty, seed=seed
    )
    for shard, index in kills:
        replicas.kill(shard, index)
    whole_group_down = any(
        group.all_down for group in replicas.groups
    )
    result = router.route(query)
    if whole_group_down:
        # A fully-down group can only answer via the shipping log.
        assert result.degraded
    if not result.degraded:
        assert result.generation == SNAPSHOT.generation
        assert result.results == reference(query)
