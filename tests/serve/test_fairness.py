"""Per-tenant fairness regression: quotas under a saturated queue.

Two tenants offer load at 10:1 against a full admission queue; the
step-by-step admit/reject schedule is pinned against the committed
``tests/golden/fairness_schedule.json`` (regenerate with
``PYTHONPATH=src python tests/golden/regen_fairness.py`` after any
intentional admission change — the diff IS the behaviour change).
"""

from __future__ import annotations

import json

from tests.golden.regen_fairness import (
    GOLDEN_PATH,
    QUOTAS,
    fairness_schedule,
)


def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


class TestPinnedSchedule:
    def test_quota_schedule_matches_golden_exactly(self):
        assert fairness_schedule(QUOTAS) == golden()["with_quotas"]

    def test_no_quota_schedule_matches_golden_exactly(self):
        assert fairness_schedule(None) == golden()["without_quotas"]


class TestFairnessFloor:
    def test_minority_tenant_holds_its_quota_floor(self):
        """Under 10:1 pressure the light tenant's acceptance rate must
        stay at or above its reserved share of the queue."""
        run = fairness_schedule(QUOTAS)
        assert run["acceptance"]["light"] >= QUOTAS["light"]
        # The queue really was contended: the majority tenant got
        # pushed back, and nobody was locked out entirely.
        assert run["acceptance"]["heavy"] < 1.0
        assert run["admitted"]["heavy"] > 0

    def test_quotas_are_what_protects_the_minority(self):
        """The contrast leg: same storm without quotas and the light
        tenant degrades to phase-luck admission, well below its
        quota-backed rate."""
        with_quotas = fairness_schedule(QUOTAS)
        without = fairness_schedule(None)
        assert (
            without["acceptance"]["light"]
            < with_quotas["acceptance"]["light"]
        )
        # Without reservations the minority is indistinguishable from
        # the majority — admission is blind to who waited.
        assert (
            abs(
                without["acceptance"]["light"]
                - without["acceptance"]["heavy"]
            )
            < 0.15
        )

    def test_schedule_accounts_for_every_step(self):
        run = fairness_schedule(QUOTAS)
        assert len(run["schedule"]) == sum(run["offered"].values())
        assert sum(run["admitted"].values()) == sum(
            1 for _, _, admitted in run["schedule"] if admitted
        )
