"""NER tests: the 13 categories, gazetteer coverage, pattern back-off."""

from __future__ import annotations

import pytest

from repro.text.ner import (
    ENTITY_CATEGORIES,
    NamedEntityRecognizer,
    NerConfig,
)


@pytest.fixture(scope="module")
def ner():
    return NamedEntityRecognizer(NerConfig(gazetteer_coverage=1.0))


def labels_of(ner, text):
    return [(e.label, e.text) for e in ner.recognize(text)]


class TestCategories:
    def test_category_list_matches_paper(self):
        assert ENTITY_CATEGORIES == (
            "ORG", "DESIG", "OBJ", "TIM", "PERIOD", "CURRENCY", "YEAR",
            "PRCNT", "PROD", "PLC", "PRSN", "LNGTH", "CNT",
        )

    def test_org_from_gazetteer(self, ner):
        assert ("ORG", "Acme Inc") in labels_of(
            ner, "Acme Inc announced results."
        )

    def test_multiword_org(self, ner):
        found = labels_of(ner, "Globex Data Systems expanded.")
        assert ("ORG", "Globex Data Systems") in found

    def test_person_from_gazetteer(self, ner):
        assert ("PRSN", "James Smith") in labels_of(
            ner, "James Smith resigned."
        )

    def test_place(self, ner):
        assert ("PLC", "New York") in labels_of(
            ner, "offices in New York opened"
        )

    def test_designation(self, ner):
        assert ("DESIG", "CEO") in labels_of(ner, "the CEO resigned")

    def test_multiword_designation(self, ner):
        assert ("DESIG", "Chief Executive Officer") in labels_of(
            ner, "named Chief Executive Officer today"
        )

    def test_product(self, ner):
        assert ("PROD", "CloudSuite") in labels_of(
            ner, "the CloudSuite platform"
        )

    def test_object(self, ner):
        assert ("OBJ", "database") in labels_of(
            ner, "a new database arrived"
        )

    def test_currency_dollar(self, ner):
        found = labels_of(ner, "a deal worth $4.5 billion closed")
        assert ("CURRENCY", "$4.5 billion") in found

    def test_currency_spelled(self, ner):
        found = labels_of(ner, "paid 20 million dollars for it")
        assert ("CURRENCY", "20 million dollars") in found

    def test_percent_symbol(self, ner):
        assert ("PRCNT", "12%") in labels_of(ner, "grew 12% this year")

    def test_percent_word(self, ner):
        assert ("PRCNT", "12 percent") in labels_of(
            ner, "grew 12 percent overall"
        )

    def test_year(self, ner):
        assert ("YEAR", "1998") in labels_of(ner, "founded in 1998 by")

    def test_count(self, ner):
        assert ("CNT", "500") in labels_of(ner, "employs 500 people")

    def test_length_unit(self, ner):
        assert ("LNGTH", "40 terabytes") in labels_of(
            ner, "stores 40 terabytes of data"
        )

    def test_time(self, ner):
        assert ("TIM", "3 pm") in labels_of(ner, "opens at 3 pm daily")

    def test_period_month(self, ner):
        assert ("PERIOD", "January") in labels_of(
            ner, "starting in January next"
        )

    def test_period_relative(self, ner):
        assert ("PERIOD", "last year") in labels_of(
            ner, "profits fell last year"
        )

    def test_period_quarter(self, ner):
        found = labels_of(ner, "in the fourth quarter results rose")
        assert any(label == "PERIOD" for label, _ in found)


class TestPatternBackoff:
    def test_honorific_person_out_of_gazetteer(self, ner):
        assert ("PRSN", "Mr. Zork Blat") in labels_of(
            ner, "Mr. Zork Blat resigned."
        )

    def test_unknown_org_with_suffix(self, ner):
        found = labels_of(ner, "Zorkatron Inc announced a deal.")
        assert ("ORG", "Zorkatron Inc") in found

    def test_known_first_name_pattern(self, ner):
        found = labels_of(ner, "and James Zorkable was promoted")
        assert ("PRSN", "James Zorkable") in found

    def test_plain_unknown_capitalized_not_entity(self, ner):
        found = labels_of(ner, "the Zorkatron was tested")
        assert not any(text == "Zorkatron" for _, text in found)


class TestCoverage:
    def test_zero_coverage_drops_gazetteer(self):
        ner = NamedEntityRecognizer(NerConfig(gazetteer_coverage=0.0))
        found = labels_of(ner, "James Smith visited London.")
        assert ("PRSN", "James Smith") not in found

    def test_coverage_is_deterministic(self):
        a = NamedEntityRecognizer(NerConfig(gazetteer_coverage=0.5))
        b = NamedEntityRecognizer(NerConfig(gazetteer_coverage=0.5))
        text = "Acme Inc hired Mary Jones in Tokyo."
        assert labels_of(a, text) == labels_of(b, text)

    def test_partial_coverage_annotates_less(self):
        # Places have no pattern back-off, so dropped gazetteer entries
        # stay unannotated (orgs with legal suffixes would be rescued by
        # the suffix pattern instead).
        full = NamedEntityRecognizer(NerConfig(gazetteer_coverage=1.0))
        thin = NamedEntityRecognizer(NerConfig(gazetteer_coverage=0.2))
        text = " ".join(
            f"offices opened in {place}." for place in [
                "Tokyo", "Paris", "Berlin", "Mumbai", "Seattle",
                "Boston", "Chicago", "Austin", "Toronto", "Sydney",
            ]
        )
        n_full = len(full.recognize(text))
        n_thin = len(thin.recognize(text))
        assert n_thin < n_full


class TestSpans:
    def test_entities_do_not_overlap(self, ner):
        text = (
            "Acme Inc named James Smith CEO in New York on Monday, "
            "paying $4.5 billion for 40 terabytes and 12% of Globex Corp."
        )
        spans = sorted(
            (e.start, e.end) for e in ner.recognize(text)
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_entity_text_matches_span(self, ner):
        from repro.text.tokenizer import tokenize

        text = "Globex Corp opened offices in Hong Kong."
        tokens = [t.text for t in tokenize(text)]
        for entity in ner.recognize(text):
            assert entity.text == " ".join(
                tokens[entity.start : entity.end]
            )
