"""POS tagger tests: closed-class lexicon, suffix rules, context patches."""

from __future__ import annotations

from repro.text.pos import OPEN_CLASS_TAGS, tag


def tags_of(text: str) -> list[tuple[str, str]]:
    return [(item.text, item.tag) for item in tag(text)]


class TestClosedClasses:
    def test_determiner(self):
        assert ("the", "dt") in tags_of("the company")

    def test_preposition(self):
        assert ("of", "in") in tags_of("head of sales")

    def test_pronoun(self):
        assert ("he", "prp") in tags_of("and he agreed")

    def test_modal(self):
        assert ("will", "md") in tags_of("it will merge")

    def test_to_gets_own_tag(self):
        assert ("to", "to") in tags_of("plans to acquire")

    def test_conjunction(self):
        assert ("and", "cc") in tags_of("mergers and acquisitions")


class TestOpenClasses:
    def test_known_verb(self):
        assert ("acquired", "vb") in tags_of("the firm acquired a rival")

    def test_ly_adverb(self):
        assert ("sharply", "rb") in tags_of("fell sharply today")

    def test_known_adjective(self):
        assert ("strong", "jj") in tags_of("a strong quarter")

    def test_capitalized_mid_sentence_is_proper_noun(self):
        result = dict(tags_of("shares of Zykrandel rose"))
        assert result["Zykrandel"] == "np"

    def test_number_is_cd(self):
        assert ("1998", "cd") in tags_of("founded in 1998")

    def test_currency_is_cd(self):
        assert ("$4.5", "cd") in tags_of("worth $4.5 billion")

    def test_tion_suffix_noun(self):
        result = dict(tags_of("a frobnication occurred"))
        assert result["frobnication"] == "nn"

    def test_ing_suffix_verb(self):
        result = dict(tags_of("they were blorfing"))
        assert result["blorfing"] == "vb"

    def test_punctuation(self):
        assert (".", "punct") in tags_of("Done.")


class TestContextPatches:
    def test_to_plus_known_verb(self):
        result = dict(tags_of("agreed to merge soon"))
        assert result["merge"] == "vb"

    def test_modal_plus_known_verb(self):
        result = dict(tags_of("it will grow"))
        assert result["grow"] == "vb"

    def test_sentence_initial_verb_not_proper_noun(self):
        first = tag("Acquired assets were sold.")[0]
        assert first.tag != "np" or first.text != "Acquired"


class TestOpenClassConstant:
    def test_matches_paper_categories(self):
        assert set(OPEN_CLASS_TAGS) == {"vb", "rb", "nn", "np", "jj"}


def test_every_token_receives_a_tag():
    text = (
        "Acme Corp acquired Globex Ltd for $4.5 billion on Monday, "
        "and shares rose 12% after the announcement."
    )
    tagged = tag(text)
    assert all(item.tag for item in tagged)
    assert len(tagged) > 10
