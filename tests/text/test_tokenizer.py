"""Unit + property tests for the regex tokenizer."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import Token, tokenize, tokenize_words


class TestBasicTokenization:
    def test_plain_words(self):
        assert tokenize_words("the quick brown fox") == [
            "the", "quick", "brown", "fox",
        ]

    def test_sentence_final_period_is_separate_token(self):
        assert tokenize_words("It rained.") == ["It", "rained", "."]

    def test_abbreviation_keeps_period(self):
        assert tokenize_words("Mr. Smith arrived.") == [
            "Mr.", "Smith", "arrived", ".",
        ]

    def test_corporate_suffix_abbreviation(self):
        assert "Inc." in tokenize_words("Acme Inc. was sold.")

    def test_dotted_initialism(self):
        assert tokenize_words("the U.S. market")[1] == "U.S."

    def test_currency_amount_single_token(self):
        assert "$4.5" in tokenize_words("paid $4.5 billion")

    def test_currency_with_thousands_separators(self):
        assert "$1,200" in tokenize_words("a $1,200 laptop")

    def test_percentage_single_token(self):
        assert "12%" in tokenize_words("grew 12% this year")

    def test_decimal_percentage(self):
        assert "3.5%" in tokenize_words("up 3.5% overall")

    def test_year_is_one_token(self):
        assert "1998" in tokenize_words("back in 1998 it began")

    def test_hyphenated_word(self):
        assert "Bangalore-based" in tokenize_words(
            "the Bangalore-based firm"
        )

    def test_possessive_kept_together(self):
        assert "company's" in tokenize_words("the company's website")

    def test_comma_is_separate(self):
        assert tokenize_words("a, b") == ["a", ",", "b"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []


class TestOffsets:
    def test_offsets_slice_back_to_token_text(self):
        text = "Acme Corp acquired Globex for $4.5 billion."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_offsets_are_monotonic(self):
        tokens = tokenize("One two three. Four five.")
        for before, after in zip(tokens, tokens[1:]):
            assert before.end <= after.start

    def test_token_is_frozen(self):
        token = tokenize("word")[0]
        assert isinstance(token, Token)
        try:
            token.text = "other"
            raised = False
        except AttributeError:
            raised = True
        assert raised


@given(st.text(max_size=300))
def test_offsets_always_consistent(text):
    for token in tokenize(text):
        assert text[token.start : token.end] == token.text
        assert token.start < token.end


@given(st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
    min_size=1, max_size=40,
))
def test_alpha_text_roundtrips_without_loss(text):
    # Purely ASCII-alphabetic text has no split points: one token equal
    # to the input.
    assert tokenize_words(text) == [text]


@given(st.lists(st.sampled_from(
    ["Acme", "acquired", "Globex", "$5", "12%", "1998", "Mr.", "today"]),
    min_size=1, max_size=20))
def test_every_input_word_is_recovered(words):
    text = " ".join(words)
    assert tokenize_words(text) == words
