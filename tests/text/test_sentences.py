"""Unit + property tests for the rule-based sentence chunker."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.sentences import split_sentence_texts, split_sentences


class TestBoundaries:
    def test_two_simple_sentences(self):
        assert split_sentence_texts("It rained. We left.") == [
            "It rained.", "We left.",
        ]

    def test_question_and_exclamation(self):
        texts = split_sentence_texts("Really? Yes! Indeed.")
        assert texts == ["Really?", "Yes!", "Indeed."]

    def test_abbreviation_does_not_split(self):
        texts = split_sentence_texts("Mr. Smith joined Acme Inc. in May.")
        assert len(texts) == 1

    def test_person_initial_does_not_split(self):
        texts = split_sentence_texts("J. Smith was promoted. He accepted.")
        assert len(texts) == 2
        assert texts[0] == "J. Smith was promoted."

    def test_decimal_number_does_not_split(self):
        texts = split_sentence_texts("Revenue grew 4.5 percent. Nice.")
        assert len(texts) == 2

    def test_number_at_sentence_end_splits(self):
        texts = split_sentence_texts("The year was 1998. Markets rose.")
        assert len(texts) == 2

    def test_lowercase_continuation_does_not_split(self):
        # An unknown abbreviation followed by lower-case text.
        texts = split_sentence_texts("The approx. value was high.")
        assert len(texts) == 1

    def test_no_trailing_punctuation(self):
        texts = split_sentence_texts("An unterminated fragment")
        assert texts == ["An unterminated fragment"]

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_whitespace_text(self):
        assert split_sentences("  \n ") == []


class TestSpans:
    def test_spans_cover_sentence_text(self):
        text = "Acme acquired Globex. The deal closed in May."
        for sentence in split_sentences(text):
            assert text[sentence.start : sentence.end].strip() == (
                sentence.text
            )

    def test_spans_are_ordered(self):
        text = "One. Two. Three."
        spans = split_sentences(text)
        for before, after in zip(spans, spans[1:]):
            assert before.end <= after.start


@given(st.lists(
    st.sampled_from([
        "Acme acquired Globex.",
        "Revenue rose 12% in the second quarter.",
        "He joined the board!",
        "Did profits fall?",
    ]),
    min_size=1, max_size=8,
))
def test_joined_sentences_split_back(parts):
    text = " ".join(parts)
    assert split_sentence_texts(text) == parts


@given(st.text(max_size=300))
def test_never_loses_non_whitespace_content(text):
    # Sentence splitting may redistribute whitespace but must preserve
    # every non-whitespace character.
    rebuilt = "".join(s.text for s in split_sentences(text))
    assert sorted(c for c in rebuilt if not c.isspace()) == sorted(
        c for c in text if not c.isspace()
    )
