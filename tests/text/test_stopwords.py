"""Stop-word list tests."""

from __future__ import annotations

from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestMembership:
    def test_function_words_present(self):
        for word in ("the", "of", "and", "is", "was", "with"):
            assert is_stopword(word)

    def test_content_words_absent(self):
        # Words that carry trigger-event signal must never be dropped.
        for word in ("new", "acquired", "ceo", "revenue", "growth",
                     "merger", "president"):
            assert not is_stopword(word)

    def test_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_contractions_present(self):
        assert is_stopword("don't")
        assert is_stopword("it's")

    def test_all_entries_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)


class TestRemoval:
    def test_removes_only_stopwords(self):
        tokens = ["the", "board", "of", "Acme", "approved", "it"]
        assert remove_stopwords(tokens) == ["board", "Acme", "approved"]

    def test_empty_list(self):
        assert remove_stopwords([]) == []

    def test_preserves_order_and_duplicates(self):
        tokens = ["growth", "the", "growth"]
        assert remove_stopwords(tokens) == ["growth", "growth"]
