"""Crawl-text normalization tests."""

from __future__ import annotations

from repro.text.normalize import (
    collapse_whitespace,
    normalize_crawl_text,
    normalize_punctuation,
    remove_invisibles,
    strip_tags,
    unescape_entities,
)


class TestEntities:
    def test_named_entities(self):
        assert unescape_entities("Smith &amp; Jones") == "Smith & Jones"

    def test_numeric_entities(self):
        assert unescape_entities("it&#39;s") == "it's"


class TestTags:
    def test_inline_tags_removed(self):
        assert strip_tags("<b>Acme</b> grew").strip() == "Acme  grew".strip()

    def test_unclosed_angle_survives(self):
        assert "<" in strip_tags("profits < costs")


class TestPunctuation:
    def test_curly_quotes(self):
        assert normalize_punctuation("“Acme’s”") == "\"Acme's\""

    def test_dashes(self):
        assert normalize_punctuation("1980–1985") == "1980-1985"
        assert normalize_punctuation("the deal — big") == "the deal - big"

    def test_ellipsis(self):
        assert normalize_punctuation("wait…") == "wait..."


class TestInvisibles:
    def test_soft_hyphen_removed(self):
        assert remove_invisibles("acqui­sition") == "acquisition"

    def test_zero_width_removed(self):
        assert remove_invisibles("a​b") == "ab"

    def test_newlines_preserved(self):
        assert remove_invisibles("a\nb") == "a\nb"

    def test_control_chars_removed(self):
        assert remove_invisibles("a\x07b\x00c") == "abc"


class TestWhitespace:
    def test_runs_collapsed(self):
        assert collapse_whitespace("a   b\t\tc") == "a b c"

    def test_blank_lines_capped(self):
        assert collapse_whitespace("a\n\n\n\n\nb") == "a\n\nb"

    def test_stripped(self):
        assert collapse_whitespace("  x  ") == "x"


class TestFullPipeline:
    def test_realistic_crawl_fragment(self):
        raw = (
            "<p>Acme&nbsp;Inc “acquired” Globex&amp;Co for­ "
            "$4.5&nbsp;billion  —   sources said…</p>"
        )
        cleaned = normalize_crawl_text(raw)
        assert "<p>" not in cleaned
        assert '"acquired"' in cleaned
        assert "&amp;" not in cleaned
        assert "  " not in cleaned

    def test_idempotent(self):
        raw = "<i>“Quote”</i> &amp; more…"
        once = normalize_crawl_text(raw)
        assert normalize_crawl_text(once) == once

    def test_tokenizer_friendly_output(self):
        from repro.text.tokenizer import tokenize_words

        raw = "Acme&nbsp;Inc ‘won’ — profits up 12%…"
        words = tokenize_words(normalize_crawl_text(raw))
        assert "Acme" in words
        assert "12%" in words
