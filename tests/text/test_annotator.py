"""Annotator pipeline tests: POS + NER merge into per-token categories."""

from __future__ import annotations

import pytest

from repro.text.annotator import Annotator
from repro.text.ner import NerConfig


@pytest.fixture(scope="module")
def annotator():
    return Annotator(NerConfig(gazetteer_coverage=1.0))


class TestMerge:
    def test_entity_tokens_carry_entity_category(self, annotator):
        annotated = annotator.annotate("Acme Inc acquired Globex Corp.")
        by_text = {t.text: t.category for t in annotated.tokens}
        assert by_text["Acme"] == "ORG"
        assert by_text["Inc"] == "ORG"

    def test_non_entity_tokens_carry_pos(self, annotator):
        annotated = annotator.annotate("Acme Inc acquired Globex Corp.")
        by_text = {t.text: t.category for t in annotated.tokens}
        assert by_text["acquired"] == "vb"

    def test_entity_attribute_none_outside_entities(self, annotator):
        annotated = annotator.annotate("profits rose sharply")
        assert all(t.entity is None for t in annotated.tokens)

    def test_entity_labels_helper(self, annotator):
        annotated = annotator.annotate(
            "Acme Inc paid $5 billion in January."
        )
        labels = annotated.entity_labels()
        assert {"ORG", "CURRENCY", "PERIOD"} <= labels

    def test_words_helper_matches_tokens(self, annotator):
        annotated = annotator.annotate("Acme Inc expanded.")
        assert annotated.words() == [t.text for t in annotated.tokens]

    def test_token_count_equals_tokenizer_output(self, annotator):
        from repro.text.tokenizer import tokenize

        text = "Acme Inc named Mary Jones CEO on Monday."
        annotated = annotator.annotate(text)
        assert len(annotated.tokens) == len(tokenize(text))


class TestAnnotateMany:
    def test_batch_matches_single(self, annotator):
        texts = ["Acme Inc grew.", "Globex Corp shrank."]
        batch = annotator.annotate_many(texts)
        singles = [annotator.annotate(t) for t in texts]
        assert [a.tokens for a in batch] == [a.tokens for a in singles]

    def test_empty_batch(self, annotator):
        assert annotator.annotate_many([]) == []
