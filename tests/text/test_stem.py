"""Porter stemmer tests: canonical vocabulary cases + invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stem import PorterStemmer, stem

#: Canonical input -> output pairs from Porter's published description.
CANONICAL = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("digitizer", "digit"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", CANONICAL)
def test_canonical_porter_cases(word, expected):
    assert stem(word) == expected


class TestDomainVocabulary:
    def test_acquired_and_acquires_share_stem(self):
        assert stem("acquired") == stem("acquires")

    def test_appointed_and_appointment_diverge_reasonably(self):
        # 'appointment' loses -ment, 'appointed' loses -ed.
        assert stem("appointed") == "appoint"
        assert stem("appointment") == "appoint"

    def test_merger_vs_merged(self):
        assert stem("merged") == "merg"
        assert stem("merges") == "merg"

    def test_short_words_untouched(self):
        assert stem("at") == "at"
        assert stem("an") == "an"

    def test_non_alpha_untouched(self):
        assert stem("12%") == "12%"
        assert stem("$4.5") == "$4.5"

    def test_case_folding(self):
        assert stem("ACQUIRED") == stem("acquired")


class TestCachingWrapper:
    def test_wrapper_matches_function(self):
        stemmer = PorterStemmer()
        for word in ("acquisitions", "reported", "executives"):
            assert stemmer.stem(word) == stem(word)

    def test_stem_all_preserves_order(self):
        stemmer = PorterStemmer()
        words = ["acquired", "companies", "profits"]
        assert stemmer.stem_all(words) == [stem(w) for w in words]

    def test_cache_is_populated(self):
        stemmer = PorterStemmer()
        stemmer.stem("Growing")
        assert "growing" in stemmer._cache


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
               max_size=30))
def test_idempotent_for_most_words(word):
    # Stemming an already-stemmed word must never raise and must return
    # lowercase alphabetic output no longer than the input.
    once = stem(word)
    assert once == once.lower()
    assert len(once) <= len(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3,
               max_size=20))
def test_plural_maps_to_singular_stem(word):
    # Porter treats -ies specially, so exclude -ie stems ("ties" -> "ti"
    # but "tie" -> "tie"); every other regular plural folds to its
    # singular's stem.
    if not word.endswith("s") and not word.endswith("ie"):
        assert stem(word + "s") == stem(word)
