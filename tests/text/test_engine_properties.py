"""Property tests for the annotation cache (hypothesis).

The cache's contract is load-bearing for the whole ingestion overhaul:
hit/miss accounting feeds the benchmark's acceptance floor, the LRU
bound keeps long-running monitors from growing without limit, and
collision safety is what lets the pipeline key by content hash at all.
Each property is checked against a straightforward reference model.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, strategies as st

import repro.text.engine as engine_module
from repro.text.engine import (
    AnnotationCache,
    AnnotationEngine,
    content_key,
)

texts_strategy = st.lists(
    st.text(alphabet="ab ", max_size=4), max_size=60
)


@given(texts_strategy, st.integers(min_value=1, max_value=8))
def test_cache_matches_lru_reference_model(sequence, capacity):
    """Hits, misses, evictions and size all track a model LRU."""
    cache = AnnotationCache(capacity)
    reference: "OrderedDict[str, str]" = OrderedDict()
    hits = misses = evictions = 0
    for text in sequence:
        assert cache.get_or_compute(text, str.upper) == text.upper()
        key = content_key(text)
        if key in reference:
            hits += 1
            reference.move_to_end(key)
        else:
            misses += 1
            reference[key] = text
            if len(reference) > capacity:
                reference.popitem(last=False)
                evictions += 1
        assert len(cache) <= capacity
    assert cache.stats.hits == hits
    assert cache.stats.misses == misses
    assert cache.stats.evictions == evictions
    assert cache.stats.lookups == len(sequence)
    assert cache.stats.collisions == 0
    assert len(cache) == len(reference)


@given(texts_strategy)
def test_zero_capacity_disables_caching(sequence):
    cache = AnnotationCache(capacity=0)
    for text in sequence:
        assert cache.get_or_compute(text, str.upper) == text.upper()
    assert len(cache) == 0
    assert cache.stats.hits == 0
    assert cache.stats.misses == len(sequence)


def test_repeat_lookup_returns_the_cached_object():
    cache = AnnotationCache(capacity=4)
    first = cache.get_or_compute("some text", lambda text: [text])
    second = cache.get_or_compute("some text", lambda text: [text])
    assert second is first


def test_hash_collision_never_serves_the_wrong_value(monkeypatch):
    """With every text forced onto one key, values stay correct."""
    monkeypatch.setattr(
        engine_module, "content_key", lambda text: "collision"
    )
    cache = AnnotationCache(capacity=8)
    assert cache.get_or_compute("first", str.upper) == "FIRST"
    assert cache.get_or_compute("second", str.upper) == "SECOND"
    assert cache.stats.collisions == 1
    # The resident entry kept its slot: "first" still hits, and the
    # collided text is recomputed (correctly) every time.
    assert cache.get_or_compute("first", str.upper) == "FIRST"
    assert cache.stats.hits == 1
    assert cache.get_or_compute("second", str.upper) == "SECOND"
    assert cache.stats.collisions == 2
    assert len(cache) == 1


@given(st.lists(st.sampled_from(
    ["Acme Inc. acquired Widgets.", "Revenue rose 12%.", ""]
), min_size=1, max_size=10))
def test_engine_accounting_is_consistent(sequence):
    engine = AnnotationEngine()
    for text in sequence:
        engine.annotate(text)
        engine.sentences(text)
        engine.index_terms(text)
    unique = set(sequence)
    n_sentences = {
        text: len(engine.sentence_spans(text)) for text in unique
    }
    stats = engine.stats()
    # Each call is one top-level lookup; an index_terms *miss* composes
    # from the sentence products, adding one sentence_spans lookup and
    # one sentence_terms lookup per sentence of that (unique) text.
    # The n_sentences reads above add one further (hit) lookup each.
    nested = sum(1 + n for n in n_sentences.values()) + len(unique)
    assert stats.lookups == 3 * len(sequence) + nested
    # Three top-level products miss once per unique text; composition
    # misses once per unique sentence (and once per unique text for
    # the span split).
    by_product = engine.stats_by_product()
    assert by_product["annotations"].misses == len(unique)
    assert by_product["sentences"].misses == len(unique)
    assert by_product["index_terms"].misses == len(unique)
    assert by_product["index_terms"].hits == len(sequence) - len(unique)
    assert stats.hits == stats.lookups - stats.misses
    assert sum(s.lookups for s in by_product.values()) == stats.lookups


def test_engine_annotation_is_computed_once():
    engine = AnnotationEngine()
    first = engine.annotate("Acme Inc. named a new CEO.")
    second = engine.annotate("Acme Inc. named a new CEO.")
    assert second is first
    assert engine.stats().hits == 1
