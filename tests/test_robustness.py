"""Robustness & failure-injection tests across the pipeline."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.core.snippets import Snippet, SnippetGenerator
from repro.core.training import AnnotatedSnippet
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.gather.store import DocumentStore
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig

_annotator = Annotator()


def item(text, key):
    return AnnotatedSnippet(
        snippet=Snippet(doc_id=key, index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )


class TestLabelShuffleSanity:
    def test_random_labels_cannot_be_learned(self):
        """With class-independent text, the classifier stays near chance
        on held-out data — there is no leakage channel."""
        rng = np.random.default_rng(6)
        pool = [
            f"Filler sentence number {i} about nothing in particular."
            for i in range(120)
        ]
        items = [item(text, f"s{i}") for i, text in enumerate(pool)]
        train_pos, train_neg = items[:30], items[30:90]
        held_out = items[90:]
        clf = TriggerEventClassifier("noise")
        clf.fit(train_pos, train_neg)
        scores = clf.score(held_out)
        # Text is exchangeable between classes: held-out scores must not
        # confidently separate (spread stays small around the prior).
        assert scores.std() < 0.35


class TestDegradedNer:
    def test_blind_ner_yields_no_filtered_snippets(self):
        """With no entity recognition at all, the entity-based filters
        reject everything — the failure is loud, not silent."""
        blind = Annotator(
            NerConfig(gazetteer_coverage=0.0, pattern_backoff=False)
        )
        driver = get_driver(MERGERS_ACQUISITIONS)
        annotated = blind.annotate(
            "Acme Inc agreed to acquire Globex Corp for $5 billion."
        )
        assert not driver.snippet_filter(annotated)


class TestHostileText:
    @pytest.mark.parametrize("text", [
        "",
        " ",
        "....!!!???",
        "a" * 5000,
        "$$$ %%% &&&",
        "éèê unicode café touché",
        "Mr. Mr. Mr. Inc. Inc. Inc.",
        "1998 1999 2000 2001 $1 $2 $3 4% 5% 6%",
    ])
    def test_annotator_never_crashes(self, text):
        annotated = _annotator.annotate(text)
        assert annotated.text == text

    @pytest.mark.parametrize("text", [
        "", "no sentence markers here", ". . . .",
    ])
    def test_snippet_generator_never_crashes(self, text):
        snippets = SnippetGenerator().from_text("d", text)
        assert isinstance(snippets, list)

    @settings(max_examples=30, deadline=None)
    @given(st.text(max_size=400))
    def test_full_text_path_handles_arbitrary_input(self, text):
        snippets = SnippetGenerator().from_text("d", text)
        for snippet in snippets:
            _annotator.annotate(snippet.text)


class TestCorruptedPersistence:
    def test_corrupted_store_line_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"doc_id": "a", "text": "fine"}\nnot json\n')
        with pytest.raises(json.JSONDecodeError):
            DocumentStore.load_jsonl(path)

    def test_missing_required_field_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"doc_id": "a"}\n')
        with pytest.raises(KeyError):
            DocumentStore.load_jsonl(path)


class TestDeterminism:
    def test_scores_are_reproducible(self):
        positives = [
            item(f"{a} agreed to acquire {b}.", f"p{i}")
            for i, (a, b) in enumerate([
                ("Acme Inc", "Globex Corp"),
                ("Initech Ltd", "Hooli Systems"),
            ] * 5)
        ]
        negatives = [
            item("the weather stayed mild in the hills.", f"n{i}")
            for i in range(10)
        ]

        def train_and_score():
            clf = TriggerEventClassifier("x")
            clf.fit(positives, negatives)
            return clf.score(positives + negatives)

        assert np.array_equal(train_and_score(), train_and_score())
