"""Parallel ingestion must be bit-identical to serial ingestion.

``EtapConfig.workers > 1`` hands each content-hash shard to its own
worker *process* (tokenize, vectorize, build a postings slice) before
a deterministic merge; it must never change what the pipeline
produces.  This test re-runs the exact golden scenario
(``tests/golden/regen.py``) under several worker counts and demands
byte-identical output against the committed snapshot — the same bar
the serial pipeline is held to in ``test_golden_pipeline.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from tests.golden.regen import CONFIG, GOLDEN_PATH, snapshot


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_never_changes_pipeline_output(workers):
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = snapshot(dataclasses.replace(CONFIG, workers=workers))
    assert current["params"] == golden["params"]
    for key in ("per_driver_counts", "top5", "alert_ids"):
        assert current[key] == golden[key], (
            f"workers={workers} drifted from the serial golden "
            f"snapshot ({key}) — process-sharded ingestion must be "
            f"a pure optimization"
        )
