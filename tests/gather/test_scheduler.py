"""Adaptive revisit scheduler tests."""

from __future__ import annotations

import pytest

from repro.gather.scheduler import RevisitScheduler


class TestTracking:
    def test_new_url_due_on_first_tick(self):
        scheduler = RevisitScheduler()
        scheduler.track("u")
        assert scheduler.due(budget=10) == ["u"]

    def test_double_track_is_idempotent(self):
        scheduler = RevisitScheduler()
        scheduler.track("u")
        scheduler.track("u")
        assert scheduler.due(budget=10) == ["u"]
        scheduler.report("u", changed=False)
        assert len(scheduler) == 1

    def test_forget_stops_visits(self):
        scheduler = RevisitScheduler()
        scheduler.track("u")
        scheduler.forget("u")
        assert scheduler.due(budget=10) == []
        assert "u" not in scheduler

    def test_budget_limits_pops(self):
        scheduler = RevisitScheduler()
        for i in range(5):
            scheduler.track(f"u{i}")
        first = scheduler.due(budget=2)
        assert len(first) == 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RevisitScheduler().due(budget=0)


class TestAdaptation:
    def test_change_shrinks_interval(self):
        scheduler = RevisitScheduler(initial_interval=8.0)
        scheduler.track("u")
        scheduler.due(budget=1)
        assert scheduler.report("u", changed=True) == 4.0

    def test_no_change_grows_interval(self):
        scheduler = RevisitScheduler(
            initial_interval=8.0, grow_factor=2.0
        )
        scheduler.track("u")
        scheduler.due(budget=1)
        assert scheduler.report("u", changed=False) == 16.0

    def test_interval_bounded(self):
        scheduler = RevisitScheduler(
            min_interval=1.0, max_interval=4.0, initial_interval=2.0
        )
        scheduler.track("u")
        scheduler.due(budget=1)
        for _ in range(10):
            interval = scheduler.report("u", changed=False)
            scheduler.due(budget=1)
        assert interval == 4.0
        for _ in range(10):
            interval = scheduler.report("u", changed=True)
            scheduler.due(budget=1)
        assert interval == 1.0

    def test_report_untracked_raises(self):
        with pytest.raises(KeyError):
            RevisitScheduler().report("ghost", changed=True)

    def test_changing_page_visited_more_often(self):
        scheduler = RevisitScheduler(
            min_interval=1.0, max_interval=32.0, initial_interval=4.0
        )
        scheduler.track("hot")
        scheduler.track("cold")
        visits = {"hot": 0, "cold": 0}
        for _ in range(60):
            for url in scheduler.due(budget=10):
                visits[url] += 1
                scheduler.report(url, changed=(url == "hot"))
        assert visits["hot"] > visits["cold"] * 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RevisitScheduler(min_interval=0)
        with pytest.raises(ValueError):
            RevisitScheduler(grow_factor=1.0)
        with pytest.raises(ValueError):
            RevisitScheduler(shrink_factor=1.0)
        with pytest.raises(ValueError):
            RevisitScheduler(
                min_interval=5.0, initial_interval=2.0
            )
