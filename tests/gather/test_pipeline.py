"""Data-gathering pipeline tests: crawl -> store -> index."""

from __future__ import annotations

import pytest

from repro.gather.pipeline import DataGatherer


@pytest.fixture(scope="module")
def gathered(small_web):
    gatherer = DataGatherer(small_web, max_pages=10_000)
    report = gatherer.gather()
    return gatherer, report


class TestGather:
    def test_all_articles_stored(self, gathered, small_web):
        gatherer, report = gathered
        assert report.documents_stored == len(small_web.documents)
        assert len(gatherer.store) == len(small_web.documents)

    def test_hub_pages_not_stored(self, gathered):
        gatherer, _ = gathered
        for document in gatherer.store:
            assert "index-" not in document.url

    def test_metadata_carries_doc_type(self, gathered):
        gatherer, _ = gathered
        document = next(iter(gatherer.store))
        assert "doc_type" in document.metadata

    def test_index_is_queryable(self, gathered):
        gatherer, _ = gathered
        hits = gatherer.engine.search('"new ceo"', top_k=10)
        assert hits

    def test_report_counts_consistent(self, gathered, small_web):
        _, report = gathered
        assert report.pages_fetched >= report.documents_stored
        assert report.duplicates_skipped == 0

    def test_page_budget_limits_store(self, small_web):
        gatherer = DataGatherer(small_web, max_pages=30)
        report = gatherer.gather()
        assert report.pages_fetched == 30
        assert len(gatherer.store) <= 30


class TestCrawlBudgetDefaults:
    """The direct-constructor path and EtapConfig must agree on the
    default crawl budget (they used to be 5 000 vs 100 000)."""

    def test_default_matches_etap_config(self, small_web):
        from repro.core.etap import EtapConfig
        from repro.gather.pipeline import DEFAULT_MAX_CRAWL_PAGES

        gatherer = DataGatherer(small_web)
        assert gatherer.max_pages == DEFAULT_MAX_CRAWL_PAGES
        assert gatherer.max_pages == EtapConfig().max_crawl_pages

    def test_explicit_budget_still_honored(self, small_web):
        gatherer = DataGatherer(small_web, max_pages=25)
        report = gatherer.gather()
        assert gatherer.max_pages == 25
        assert report.pages_fetched <= 25
