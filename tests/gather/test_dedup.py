"""Near-duplicate detection tests: shingles, MinHash, LSH index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gather.dedup import (
    MinHasher,
    NearDuplicateIndex,
    deduplicate_texts,
    jaccard,
    shingles,
)

ARTICLE = (
    "Acme Inc agreed to acquire Globex Corp for five billion dollars. "
    "The deal is expected to be finalized in the fourth quarter. "
    "Shareholders of Globex Corp approved the merger in January. "
    "Analysts expect the industry to consolidate further this year."
)

MIRRORED = ARTICLE.replace("Analysts", "Most analysts")

UNRELATED = (
    "Our guide to hiking trails has been updated for March. "
    "Residents gathered for an afternoon of music festivals. "
    "Sign up for our newsletter to get updates about gardening."
)


class TestShingles:
    def test_count(self):
        result = shingles("a b c d", k=3)
        assert result == {"a b c", "b c d"}

    def test_short_text(self):
        assert shingles("a b", k=3) == {"a b"}

    def test_empty_text(self):
        assert shingles("", k=3) == set()

    def test_case_folded(self):
        assert shingles("A B C", k=3) == shingles("a b c", k=3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            shingles("x", k=0)


class TestJaccard:
    def test_identical(self):
        s = shingles(ARTICLE)
        assert jaccard(s, s) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0


class TestMinHasher:
    def test_identical_texts_agree_fully(self):
        hasher = MinHasher()
        sig = hasher.signature(shingles(ARTICLE))
        assert hasher.estimate_similarity(sig, sig) == 1.0

    def test_estimate_tracks_true_jaccard(self):
        hasher = MinHasher(n_permutations=192)
        a, b = shingles(ARTICLE), shingles(MIRRORED)
        true = jaccard(a, b)
        estimate = hasher.estimate_similarity(
            hasher.signature(a), hasher.signature(b)
        )
        assert abs(true - estimate) < 0.15

    def test_unrelated_texts_estimate_low(self):
        hasher = MinHasher()
        estimate = hasher.estimate_similarity(
            hasher.signature(shingles(ARTICLE)),
            hasher.signature(shingles(UNRELATED)),
        )
        assert estimate < 0.2

    def test_deterministic(self):
        a = MinHasher(seed=5).signature(shingles(ARTICLE))
        b = MinHasher(seed=5).signature(shingles(ARTICLE))
        assert a == b

    def test_signature_length(self):
        hasher = MinHasher(n_permutations=32)
        assert len(hasher.signature({"x"})) == 32

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimate_similarity((1, 2), (1,))

    def test_invalid_permutations(self):
        with pytest.raises(ValueError):
            MinHasher(n_permutations=0)


class TestNearDuplicateIndex:
    def test_detects_mirror(self):
        index = NearDuplicateIndex()
        assert index.add("original", ARTICLE) == []
        pairs = index.add("mirror", MIRRORED)
        assert pairs
        assert pairs[0].first == "original"
        assert pairs[0].similarity >= 0.8

    def test_unrelated_not_flagged(self):
        index = NearDuplicateIndex()
        index.add("original", ARTICLE)
        assert index.add("other", UNRELATED) == []

    def test_is_near_duplicate_probe(self):
        index = NearDuplicateIndex()
        index.add("original", ARTICLE)
        assert index.is_near_duplicate(MIRRORED)
        assert not index.is_near_duplicate(UNRELATED)

    def test_duplicate_key_rejected(self):
        index = NearDuplicateIndex()
        index.add("a", ARTICLE)
        with pytest.raises(KeyError):
            index.add("a", ARTICLE)

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            NearDuplicateIndex(MinHasher(n_permutations=96), bands=7)

    def test_len(self):
        index = NearDuplicateIndex()
        index.add("a", ARTICLE)
        index.add("b", UNRELATED)
        assert len(index) == 2


class TestDeduplicateTexts:
    def test_keeps_first_drops_mirror(self):
        kept, dropped = deduplicate_texts({
            "a": ARTICLE,
            "b": MIRRORED,
            "c": UNRELATED,
        })
        assert kept == ["a", "c"]
        assert len(dropped) == 1
        assert dropped[0].second == "b"

    def test_no_duplicates(self):
        kept, dropped = deduplicate_texts({
            "a": ARTICLE, "c": UNRELATED,
        })
        assert kept == ["a", "c"]
        assert dropped == []


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet="ab ", min_size=0, max_size=120))
def test_exact_duplicate_always_estimates_one(text):
    hasher = MinHasher(n_permutations=16)
    sig = hasher.signature(shingles(text))
    assert hasher.estimate_similarity(sig, sig) == 1.0
