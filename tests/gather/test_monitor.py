"""Page-change monitoring tests."""

from __future__ import annotations

import pytest

from repro.corpus.web import Page, SyntheticWeb
from repro.gather.monitor import PageMonitor

import networkx as nx


def make_web(pages: dict[str, str]) -> SyntheticWeb:
    web = SyntheticWeb({}, nx.DiGraph())
    for url, text in pages.items():
        web.add_page(Page(url=url, title=url, text=text, links=()))
    return web


@pytest.fixture
def web():
    return make_web({
        "http://a": "Alpha sentence one. Alpha sentence two.",
        "http://b": "Beta sentence one. Beta sentence two.",
    })


class TestFirstObservation:
    def test_new_pages_reported(self, web):
        monitor = PageMonitor(web)
        report = monitor.observe(["http://a", "http://b"])
        assert report.observed == 2
        assert len(report.new_pages) == 2
        assert not report.modified_pages

    def test_new_page_sentences_captured(self, web):
        monitor = PageMonitor(web)
        report = monitor.observe(["http://a"])
        assert "Alpha sentence one." in report.new_pages[0].new_sentences


class TestSubsequentObservations:
    def test_unchanged_page_is_silent(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a"])
        report = monitor.observe(["http://a"])
        assert report.changes == []

    def test_appended_sentence_detected(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a"])
        web.add_page(Page(
            url="http://a", title="a",
            text="Alpha sentence one. Alpha sentence two. "
                 "A fresh third sentence.",
            links=(),
        ))
        report = monitor.observe(["http://a"])
        assert len(report.modified_pages) == 1
        change = report.modified_pages[0]
        assert change.new_sentences == ("A fresh third sentence.",)
        assert change.removed_sentences == 0

    def test_removed_sentence_counted(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a"])
        web.add_page(Page(
            url="http://a", title="a",
            text="Alpha sentence one.", links=(),
        ))
        report = monitor.observe(["http://a"])
        assert report.modified_pages[0].removed_sentences == 1

    def test_whitespace_only_change_ignored(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a"])
        web.add_page(Page(
            url="http://a", title="a",
            text="Alpha  sentence   one. Alpha sentence two.",
            links=(),
        ))
        report = monitor.observe(["http://a"])
        assert report.changes == []

    def test_default_observation_covers_tracked(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a", "http://b"])
        web.add_page(Page(
            url="http://b", title="b",
            text="Beta sentence one. Entirely new material.",
            links=(),
        ))
        report = monitor.observe()
        assert [c.url for c in report.modified_pages] == ["http://b"]


class TestRemovedPages:
    def test_vanished_page_reported_once(self, web):
        monitor = PageMonitor(web)
        monitor.observe(["http://a"])
        web._pages.pop("http://a")
        first = monitor.observe(["http://a"])
        assert len(first.removed_pages) == 1
        second = monitor.observe(["http://a"])
        assert second.changes == []

    def test_unknown_url_never_tracked(self, web):
        monitor = PageMonitor(web)
        report = monitor.observe(["http://missing"])
        assert report.changes == []
        assert monitor.tracked_urls == []


class TestAllNewSentences:
    def test_aggregates_across_changes(self, web):
        monitor = PageMonitor(web)
        report = monitor.observe(["http://a", "http://b"])
        sentences = report.all_new_sentences()
        assert "Alpha sentence one." in sentences
        assert "Beta sentence two." in sentences
