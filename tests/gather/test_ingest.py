"""Sharded-ingestion tests: routing, worker tokenization, merge, events.

The determinism contract under test: for any worker count, the merged
flat postings are bit-identical to a classic serial
``InvertedIndex.add_document`` build over the same documents in the
same order.
"""

from __future__ import annotations

import pytest

import repro.gather.store as store_module
from repro.gather.ingest import (
    AcceptedDoc,
    ShardedIngester,
    shard_of,
    tokenize_shard,
)
from repro.gather.store import DocumentStore, StoredDocument, content_hash
from repro.obs.events import EventLog
from repro.obs.tracer import Tracer
from repro.search.index import InvertedIndex
from repro.text.engine import AnnotationEngine

TEXTS = [
    "Acme Corp. acquired Widgets Inc. The deal closed quickly.",
    "Quarterly revenue rose 12%. Analysts cheered the results.",
    "Acme Corp. acquired Widgets Inc. Markets reacted calmly.",
    "The merger was announced on Monday. Quarterly revenue rose 12%.",
    "A new CEO was appointed. The deal closed quickly.",
    "Layoffs hit the sector. A new CEO was appointed.",
    "",
]


def build_store(texts=TEXTS):
    store = DocumentStore()
    accepted = []
    for i, text in enumerate(texts):
        document = StoredDocument(
            doc_id=f"d{i}", url=f"http://s/{i}", title=f"t{i}", text=text
        )
        added, _, fingerprint = store.try_add(document)
        if added:
            accepted.append(
                AcceptedDoc(
                    seq=len(accepted),
                    doc_id=document.doc_id,
                    title=document.title,
                    fingerprint=fingerprint,
                )
            )
    return store, accepted


def classic_index(store):
    index = InvertedIndex()
    for document in store:
        index.add_document(document.doc_id, document.text, document.title)
    return index


def postings_snapshot(index, vocab):
    return {
        term: {
            doc_key: list(posting.positions)
            for doc_key, posting in index.postings(term).items()
        }
        for term in vocab
    }


class TestShardOf:
    def test_deterministic_and_in_range(self):
        fingerprint = content_hash("some document text")
        for n in (1, 2, 4, 7):
            shard = shard_of(fingerprint, n)
            assert 0 <= shard < n
            assert shard == shard_of(fingerprint, n)

    def test_spreads_across_shards(self):
        shards = {
            shard_of(content_hash(f"text {i}"), 4) for i in range(50)
        }
        assert shards == {0, 1, 2, 3}


class TestTokenizeShard:
    def test_engine_and_engineless_paths_agree(self):
        store, accepted = build_store()
        ordinals = [store.ordinal_of(doc.doc_id) for doc in accepted]
        buffer, offsets = store.flat_texts(ordinals)
        bare = tokenize_shard(0, buffer, offsets, engine=None)
        warmed = tokenize_shard(
            0, buffer, offsets, engine=AnnotationEngine()
        )
        assert bare.vocab == warmed.vocab
        assert bare.token_terms.tolist() == warmed.token_terms.tolist()
        assert bare.doc_ptr.tolist() == warmed.doc_ptr.tolist()

    def test_sentence_memo_accounting(self):
        store, accepted = build_store()
        ordinals = [store.ordinal_of(doc.doc_id) for doc in accepted]
        buffer, offsets = store.flat_texts(ordinals)
        result = tokenize_shard(0, buffer, offsets)
        # The corpus repeats sentences across documents by design.
        assert result.sentence_hits > 0
        assert result.sentence_misses > 0
        assert result.fallbacks == 0


class TestMergeDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_flat_merge_matches_classic_serial_build(self, workers):
        store, accepted = build_store()
        result = ShardedIngester(workers).ingest(store, accepted)
        flat_index = InvertedIndex()
        flat_index.adopt_flat(result.flat)
        reference = classic_index(store)
        assert flat_index.doc_keys() == reference.doc_keys()
        assert postings_snapshot(
            flat_index, result.flat.vocab
        ) == postings_snapshot(reference, result.flat.vocab)
        for term in result.flat.vocab:
            assert flat_index.document_frequency(
                term
            ) == reference.document_frequency(term)
        for doc_key in reference.doc_keys():
            assert flat_index.doc_length(doc_key) == reference.doc_length(
                doc_key
            )
            assert flat_index.title(doc_key) == reference.title(doc_key)

    def test_vocab_identical_across_worker_counts(self):
        store, accepted = build_store()
        vocabs = [
            ShardedIngester(w).ingest(store, accepted).flat.vocab
            for w in (1, 2, 4)
        ]
        assert vocabs[0] == vocabs[1] == vocabs[2]

    def test_matrix_identical_across_worker_counts(self):
        store, accepted = build_store()
        matrices = [
            ShardedIngester(w).ingest(store, accepted).matrix
            for w in (1, 2, 4)
        ]
        for matrix in matrices[1:]:
            assert (matrix != matrices[0]).nnz == 0

    def test_corpus_smaller_than_worker_count(self):
        store, accepted = build_store(["Just one document here."])
        result = ShardedIngester(4).ingest(store, accepted)
        index = InvertedIndex()
        index.adopt_flat(result.flat)
        reference = classic_index(store)
        assert postings_snapshot(
            index, result.flat.vocab
        ) == postings_snapshot(reference, result.flat.vocab)

    def test_spawn_start_method_matches_fork(self):
        """Workers must never silently depend on fork: the payloads and
        the worker entry point stay picklable under spawn."""
        store, accepted = build_store()
        forked = ShardedIngester(2, mp_start_method="fork").ingest(
            store, accepted
        )
        spawned = ShardedIngester(2, mp_start_method="spawn").ingest(
            store, accepted
        )
        assert forked.flat.vocab == spawned.flat.vocab
        assert (
            forked.flat.token_terms.tolist()
            == spawned.flat.token_terms.tolist()
        )
        assert (
            forked.flat.doc_ptr.tolist() == spawned.flat.doc_ptr.tolist()
        )


class TestObservability:
    def test_shard_merged_events_and_counters(self):
        store, accepted = build_store()
        tracer = Tracer()
        log = EventLog()
        ShardedIngester(2, tracer=tracer, event_log=log).ingest(
            store, accepted
        )
        events = log.events("shard_merged")
        assert len(events) == 2
        assert sum(e.payload["docs"] for e in events) == len(accepted)
        counters = tracer.registry.counters
        assert counters["ingest.shard_docs[0]"] + counters[
            "ingest.shard_docs[1]"
        ] == len(accepted)
        assert counters["ingest.shards_merged"] == 2


class TestHashShortCircuit:
    """`add` must not hash content when the id or url already dedupes."""

    @pytest.fixture
    def counted_hash(self, monkeypatch):
        calls = []

        def counting(text):
            calls.append(text)
            return content_hash(text)

        monkeypatch.setattr(store_module, "content_hash", counting)
        return calls

    def test_id_duplicate_skips_hash(self, counted_hash):
        store = DocumentStore()
        store.add(StoredDocument("a", "http://x/1", "t", "first text"))
        assert len(counted_hash) == 1
        store.add(StoredDocument("a", "http://x/2", "t", "other text"))
        assert len(counted_hash) == 1  # no hash for the id duplicate

    def test_url_duplicate_skips_hash(self, counted_hash):
        store = DocumentStore()
        store.add(StoredDocument("a", "http://x/1", "t", "first text"))
        store.add(StoredDocument("b", "http://x/1", "t", "other text"))
        assert len(counted_hash) == 1  # no hash for the url duplicate

    def test_content_duplicate_still_hashes_once(self, counted_hash):
        store = DocumentStore()
        store.add(StoredDocument("a", "http://x/1", "t", "same text"))
        store.add(StoredDocument("b", "http://x/2", "t", "same  TEXT"))
        assert len(counted_hash) == 2  # one hash per add, both needed
        assert len(store) == 1
