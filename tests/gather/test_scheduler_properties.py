"""Property-based invariants for the adaptive revisit scheduler.

The unit tests in ``test_scheduler.py`` pin concrete behaviours; these
fuzz arbitrary change/unchanged observation sequences and assert the
invariants that must hold regardless of order:

- every tracked interval stays within ``[min_interval, max_interval]``
- the heap and the entries map stay consistent: every live entry's
  ``next_due`` is represented in the queue, and ``due()`` never yields
  a forgotten or duplicate URL
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gather.scheduler import RevisitScheduler


@st.composite
def schedulers(draw):
    min_i = draw(st.floats(0.5, 4.0, allow_nan=False))
    init = min_i * draw(st.floats(1.0, 4.0, allow_nan=False))
    max_i = init * draw(st.floats(1.0, 8.0, allow_nan=False))
    return RevisitScheduler(
        min_interval=min_i,
        max_interval=max_i,
        initial_interval=init,
        grow_factor=draw(st.floats(1.1, 3.0, allow_nan=False)),
        shrink_factor=draw(st.floats(0.1, 0.9, allow_nan=False)),
    )


# An action script: (url index, changed?) observation pairs plus
# interleaved forgets, applied to a small URL universe.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("report"), st.integers(0, 7), st.booleans()),
        st.tuples(st.just("forget"), st.integers(0, 7), st.none()),
        st.tuples(st.just("track"), st.integers(0, 7), st.none()),
        st.tuples(st.just("due"), st.integers(1, 5), st.none()),
    ),
    max_size=60,
)


def url_of(i: int) -> str:
    return f"http://site-{i}.example.com/page.html"


def apply_script(sched: RevisitScheduler, script) -> set[str]:
    """Apply the action script; returns the in-flight URL set.

    A URL popped by ``due()`` is handed to the caller and is out of
    the queue until it is reported back — that is the protocol, not
    an inconsistency.
    """
    in_flight: set[str] = set()
    for kind, arg, flag in script:
        if kind == "track":
            sched.track(url_of(arg))
        elif kind == "forget":
            sched.forget(url_of(arg))
            in_flight.discard(url_of(arg))
        elif kind == "report":
            url = url_of(arg)
            sched.track(url)
            sched.report(url, changed=flag)
            in_flight.discard(url)
        elif kind == "due":
            in_flight.update(sched.due(budget=arg))
    return in_flight


@settings(max_examples=60, deadline=None)
@given(schedulers(), actions)
def test_intervals_always_within_bounds(sched, script):
    apply_script(sched, script)
    for i in range(8):
        url = url_of(i)
        if url in sched:
            interval = sched.interval_of(url)
            assert sched.min_interval <= interval <= sched.max_interval


@settings(max_examples=60, deadline=None)
@given(schedulers(), actions)
def test_heap_and_entries_stay_consistent(sched, script):
    in_flight = apply_script(sched, script)
    queued = {url for _, _, url in sched._heap}
    # Every live entry is either queued or in flight (popped by due()
    # and awaiting its report); lazy removal leaves stale extras in
    # the queue but never drops a live URL.
    for i in range(8):
        url = url_of(i)
        if url in sched:
            assert url in queued or url in in_flight, (
                "tracked URL neither queued nor in flight"
            )
    assert sched.queue_depth >= len(sched) - len(in_flight)


@settings(max_examples=60, deadline=None)
@given(schedulers(), actions, st.integers(1, 5))
def test_due_never_yields_forgotten_or_duplicate_urls(
    sched, script, budget
):
    apply_script(sched, script)
    for _ in range(10):
        batch = sched.due(budget=budget)
        assert len(batch) <= budget
        assert len(set(batch)) == len(batch), "duplicate in one batch"
        for url in batch:
            assert url in sched, "due() yielded a forgotten URL"
            # Popped entries are genuinely due.
            entry_due = sched.now - sched.interval_of(url)
            assert entry_due <= sched.now


@settings(max_examples=40, deadline=None)
@given(schedulers(), st.lists(st.booleans(), min_size=1, max_size=30))
def test_change_shrinks_and_stability_grows_monotonically(
    sched, observations
):
    url = url_of(0)
    sched.track(url)
    previous = sched.interval_of(url)
    for changed in observations:
        interval = sched.report(url, changed=changed)
        if changed:
            assert interval <= previous + 1e-12
        else:
            assert interval >= previous - 1e-12
        previous = interval
