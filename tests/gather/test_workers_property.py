"""Property suite: worker count never changes what ingestion produces.

Randomized corpora (drawn from a small sentence pool, so sentence- and
document-level duplicates arise constantly) go through
:class:`~repro.gather.ingest.ShardedIngester` at several worker counts;
every run must be bit-identical to the classic serial
``InvertedIndex.add_document`` build — store order, vocabulary,
postings (docs *and* positions), document frequencies, and the
document-term matrix.  A final end-to-end leg pins alert ids across
worker counts on a corpus independent of the golden snapshot's.
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.alerts import AlertService
from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.gather.ingest import AcceptedDoc, ShardedIngester
from repro.gather.store import DocumentStore, StoredDocument
from repro.search.index import InvertedIndex

WORKER_COUNTS = (1, 2, 4)

#: Small pool → heavy cross-document sentence reuse, which is exactly
#: what the per-sentence memo and the dedup short-circuits feed on.
SENTENCES = (
    "Acme Corp. acquired Widgets Inc.",
    "Quarterly revenue rose 12%.",
    "A new CEO was appointed on Monday.",
    "The deal closed quickly.",
    "Layoffs hit the sector hard.",
    "Analysts cheered the results.",
    "The merger was announced today.",
    "Markets reacted calmly.",
)


@st.composite
def corpora(draw) -> list[str]:
    texts = draw(
        st.lists(
            st.lists(
                st.sampled_from(SENTENCES), min_size=0, max_size=4
            ).map(" ".join),
            min_size=0,
            max_size=18,
        )
    )
    # Re-append earlier texts verbatim: exact content duplicates that
    # the parent-side dedup must drop before any shard sees them.
    if texts:
        for index in draw(
            st.lists(
                st.integers(0, len(texts) - 1), min_size=0, max_size=6
            )
        ):
            texts.append(texts[index])
    return texts


def ingest_all(texts):
    """Serial dedup + accept, exactly like the pipeline's parent loop."""
    store = DocumentStore()
    accepted = []
    for i, text in enumerate(texts):
        document = StoredDocument(
            doc_id=f"d{i}", url=f"http://s/{i}", title=f"t{i}", text=text
        )
        added, _, fingerprint = store.try_add(document)
        if added:
            accepted.append(
                AcceptedDoc(
                    seq=len(accepted),
                    doc_id=document.doc_id,
                    title=document.title,
                    fingerprint=fingerprint,
                )
            )
    return store, accepted


def full_snapshot(index, vocab):
    return {
        "doc_keys": index.doc_keys(),
        "postings": {
            term: {
                doc_key: list(posting.positions)
                for doc_key, posting in index.postings(term).items()
            }
            for term in vocab
        },
        "df": {term: index.document_frequency(term) for term in vocab},
        "lengths": {
            doc_key: index.doc_length(doc_key)
            for doc_key in index.doc_keys()
        },
    }


@settings(max_examples=12, deadline=None)
@given(corpora())
# One document, four workers: shards must tolerate being empty.
@example(["Acme Corp. acquired Widgets Inc."])
# Duplicate-heavy corpus whose *unique* survivors still cross shard
# boundaries: every text appears twice, only the first copy lands.
@example([s for s in SENTENCES for _ in range(2)])
@example([])
def test_every_worker_count_matches_serial_build(texts):
    store, accepted = ingest_all(texts)

    reference = InvertedIndex()
    for document in store:
        reference.add_document(
            document.doc_id, document.text, document.title
        )
    serial_order = [document.doc_id for document in store]

    baseline = None
    for workers in WORKER_COUNTS:
        result = ShardedIngester(workers).ingest(store, accepted)
        # Store order is fixed by the serial parent loop — sharding
        # must reflect it back untouched.
        assert result.flat.doc_keys == serial_order
        index = InvertedIndex()
        index.adopt_flat(result.flat)
        assert full_snapshot(index, result.flat.vocab) == full_snapshot(
            reference, result.flat.vocab
        )
        current = (
            result.flat.vocab,
            result.flat.token_terms.tolist(),
            result.matrix.toarray().tolist(),
        )
        if baseline is None:
            baseline = current
        else:
            assert current == baseline, (
                f"workers={workers} produced a different flat stream"
            )


class TestEndToEndAlerts:
    """Alert ids survive the full pipeline at every worker count.

    Uses its own corpus seed so this is independent evidence from the
    golden-scenario equivalence test in ``test_workers_equivalence``.
    """

    N_DOCS = 80
    SEED = 101
    EVOLVE_SEED = 17
    N_NEW_DOCS = 15

    @classmethod
    def run(cls, workers: int):
        web = build_web(cls.N_DOCS, CorpusConfig(seed=cls.SEED))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                workers=workers,
                top_k_per_query=20,
                negative_sample_size=200,
            ),
        )
        etap.gather()
        etap.train()
        service = AlertService(etap)
        WebEvolver(web, CorpusConfig(seed=cls.EVOLVE_SEED)).advance(
            cls.N_NEW_DOCS
        )
        report = service.poll()
        return {
            "store_order": [doc.doc_id for doc in etap.store],
            "doc_keys": etap.engine.index.doc_keys(),
            "alert_ids": sorted(a.alert_id for a in report.alerts),
        }

    @pytest.fixture(scope="class")
    def serial(self):
        return self.run(workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_alert_ids_match_serial(self, serial, workers):
        assert self.run(workers) == serial
