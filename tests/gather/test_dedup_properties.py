"""Property-style tests for NearDuplicateIndex.

Deterministic randomized checks (seeded rng, many cases) of the
invariants the gather pipeline relies on:

* reflexivity — a document is always a near-duplicate of itself;
* exactness at threshold 1.0 — only exact shingle matches are flagged;
* monotonicity — raising the threshold never flags *more* pages.
"""

from __future__ import annotations

import random

import pytest

from repro.gather.dedup import NearDuplicateIndex, shingles

_VOCAB = (
    "acquisition merger revenue quarter profit growth company ceo "
    "market board shares earnings product launch deal report analyst "
    "chairman appointed income results forecast guidance expansion"
).split()


def _random_text(rng: random.Random, n_words: int = 40) -> str:
    return " ".join(rng.choice(_VOCAB) for _ in range(n_words))


def _edited(rng: random.Random, text: str, n_edits: int) -> str:
    """Replace ``n_edits`` random words — a near-duplicate generator."""
    words = text.split()
    for _ in range(n_edits):
        words[rng.randrange(len(words))] = rng.choice(_VOCAB)
    return " ".join(words)


@pytest.mark.parametrize("seed", range(10))
def test_document_is_near_duplicate_of_itself(seed):
    rng = random.Random(seed)
    index = NearDuplicateIndex(threshold=1.0)
    for case in range(10):
        text = _random_text(rng, n_words=rng.randrange(5, 60))
        index.add(f"doc-{case}", text)
        assert index.is_near_duplicate(text), text


@pytest.mark.parametrize("seed", range(10))
def test_threshold_one_flags_only_exact_shingle_matches(seed):
    rng = random.Random(100 + seed)
    index = NearDuplicateIndex(threshold=1.0)
    originals = []
    for case in range(10):
        text = _random_text(rng)
        originals.append(text)
        index.add(f"doc-{case}", text)
    for text in originals:
        # Identical shingle set -> flagged.
        assert index.is_near_duplicate(text)
        # Any probe whose shingle set differs must not be flagged at
        # threshold 1.0 (distinct sets cannot have estimated
        # similarity 1.0 under a shared MinHash family, except by a
        # full 96-permutation collision, which the fixed seed rules
        # out for these inputs).
        probe = _edited(rng, text, n_edits=3)
        if any(
            shingles(probe) == shingles(original)
            for original in originals
        ):
            continue
        assert not index.is_near_duplicate(probe), probe


@pytest.mark.parametrize("seed", range(5))
def test_raising_threshold_never_flags_more(seed):
    rng = random.Random(200 + seed)
    corpus: list[str] = []
    for _ in range(8):
        text = _random_text(rng)
        corpus.append(text)
        # Mix in near-duplicates at varying edit distances so there is
        # something to flag at intermediate thresholds.
        corpus.append(_edited(rng, text, n_edits=rng.randrange(1, 6)))
        corpus.append(_edited(rng, text, n_edits=rng.randrange(10, 25)))

    def flagged_at(threshold: float) -> set[int]:
        index = NearDuplicateIndex(threshold=threshold)
        flagged = set()
        for position, text in enumerate(corpus):
            if index.is_near_duplicate(text):
                flagged.add(position)
            index.add(f"doc-{position}", text)
        return flagged

    thresholds = (0.2, 0.4, 0.6, 0.8, 1.0)
    results = [flagged_at(threshold) for threshold in thresholds]
    for looser, stricter in zip(results, results[1:]):
        assert stricter <= looser


def test_exact_duplicate_flagged_at_every_threshold():
    text = _random_text(random.Random(7))
    for threshold in (0.1, 0.5, 0.9, 1.0):
        index = NearDuplicateIndex(threshold=threshold)
        index.add("original", text)
        assert index.is_near_duplicate(text)
