"""Document-store tests: dedup, lookup, ordering, persistence."""

from __future__ import annotations

import pytest

from repro.gather.store import (
    DocumentStore,
    DuplicateDocumentError,
    StoredDocument,
    content_hash,
)


def doc(doc_id="d1", url="http://a/x", text="some text", title="t"):
    return StoredDocument(doc_id=doc_id, url=url, title=title, text=text)


class TestContentHash:
    def test_whitespace_insensitive(self):
        assert content_hash("a  b\nc") == content_hash("a b c")

    def test_case_insensitive(self):
        assert content_hash("Hello World") == content_hash("hello world")

    def test_different_content_differs(self):
        assert content_hash("alpha") != content_hash("beta")


class TestAdd:
    def test_add_and_get(self):
        store = DocumentStore()
        assert store.add(doc())
        assert store.get("d1").text == "some text"

    def test_duplicate_id_skipped(self):
        store = DocumentStore()
        store.add(doc())
        assert not store.add(doc(text="different"))
        assert len(store) == 1

    def test_duplicate_url_skipped(self):
        store = DocumentStore()
        store.add(doc())
        assert not store.add(doc(doc_id="d2", text="different"))

    def test_duplicate_content_skipped(self):
        store = DocumentStore()
        store.add(doc())
        assert not store.add(
            doc(doc_id="d2", url="http://b/y", text="SOME   text")
        )

    def test_strict_mode_raises(self):
        store = DocumentStore()
        store.add(doc())
        with pytest.raises(DuplicateDocumentError):
            store.add(doc(), strict=True)

    def test_add_many_counts_stored(self):
        store = DocumentStore()
        stored = store.add_many(
            [doc(), doc(doc_id="d2", url="http://b", text="other"),
             doc(doc_id="d3", url="http://c", text="other")]
        )
        assert stored == 2

    def test_empty_url_never_collides(self):
        store = DocumentStore()
        store.add(doc(doc_id="a", url="", text="first"))
        assert store.add(doc(doc_id="b", url="", text="second"))


class TestAccess:
    def test_get_by_url(self):
        store = DocumentStore()
        store.add(doc())
        assert store.get_by_url("http://a/x").doc_id == "d1"

    def test_contains(self):
        store = DocumentStore()
        store.add(doc())
        assert "d1" in store
        assert "d2" not in store

    def test_iteration_preserves_insert_order(self):
        store = DocumentStore()
        for i in range(5):
            store.add(doc(doc_id=f"d{i}", url=f"http://a/{i}",
                          text=f"text {i}"))
        assert [d.doc_id for d in store] == [f"d{i}" for i in range(5)]

    def test_doc_ids(self):
        store = DocumentStore()
        store.add(doc())
        assert store.doc_ids() == ["d1"]

    def test_missing_get_raises(self):
        with pytest.raises(KeyError):
            DocumentStore().get("nope")

    def test_iteration_survives_concurrent_add(self):
        """The serve layer re-indexes from the store while gathering
        may still append: iteration works over a snapshot of the id
        list, so adds during a sweep never raise or skip-ahead."""
        store = DocumentStore()
        for i in range(50):
            store.add(doc(doc_id=f"d{i}", url=f"http://a/{i}",
                          text=f"text {i}"))
        seen = []
        for i, document in enumerate(store):
            seen.append(document.doc_id)
            if i % 10 == 0:  # mutate mid-iteration
                store.add(doc(
                    doc_id=f"late{i}", url=f"http://late/{i}",
                    text=f"late text {i}",
                ))
        # The sweep sees exactly the ids present when it started.
        assert seen == [f"d{i}" for i in range(50)]
        assert len(store) == 55

    def test_iteration_snapshot_under_threads(self):
        import threading

        store = DocumentStore()
        for i in range(200):
            store.add(doc(doc_id=f"d{i:03d}", url=f"http://a/{i}",
                          text=f"text {i}"))
        errors = []

        def writer():
            for i in range(200):
                try:
                    store.add(doc(
                        doc_id=f"w{i:03d}", url=f"http://w/{i}",
                        text=f"writer text {i}",
                    ))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        def sweeper():
            for _ in range(20):
                try:
                    ids = [document.doc_id for document in store]
                    # Prefix stability: the seed docs always lead.
                    assert ids[:200] == [f"d{i:03d}" for i in range(200)]
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=sweeper) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        store = DocumentStore()
        store.add(doc(doc_id="a", url="http://a", text="first text"))
        store.add(StoredDocument(
            doc_id="b", url="http://b", title="t2", text="second text",
            metadata={"doc_type": "ma_news"},
        ))
        path = tmp_path / "docs.jsonl"
        store.save_jsonl(path)
        loaded = DocumentStore.load_jsonl(path)
        assert len(loaded) == 2
        assert loaded.get("b").metadata == {"doc_type": "ma_news"}
        assert [d.doc_id for d in loaded] == ["a", "b"]

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "docs.jsonl"
        path.write_text(
            '{"doc_id": "a", "text": "hello"}\n\n'
            '{"doc_id": "b", "text": "world"}\n'
        )
        loaded = DocumentStore.load_jsonl(path)
        assert len(loaded) == 2


class TestFlatBuffer:
    """The contiguous-arena surface the sharded ingester rides on."""

    def fill(self):
        store = DocumentStore()
        texts = ["alpha bravo", "", "charlie delta echo", "foxtrot"]
        for i, text in enumerate(texts):
            store.add(doc(doc_id=f"d{i}", url=f"http://a/{i}", text=text))
        return store, texts

    def test_text_at_and_ordinal_of(self):
        store, texts = self.fill()
        for i, text in enumerate(texts):
            ordinal = store.ordinal_of(f"d{i}")
            assert store.text_at(ordinal) == text

    def test_flat_texts_roundtrip_any_subset(self):
        store, texts = self.fill()
        ordinals = [store.ordinal_of("d2"), store.ordinal_of("d0")]
        buffer, offsets = store.flat_texts(ordinals)
        assert len(offsets) == len(ordinals) + 1
        decoded = [
            buffer[offsets[i]:offsets[i + 1]].decode("utf-8")
            for i in range(len(ordinals))
        ]
        assert decoded == [texts[2], texts[0]]

    def test_memory_bytes_grows_with_content(self):
        store = DocumentStore()
        empty = store.memory_bytes()
        store.add(doc(text="x" * 10_000))
        assert store.memory_bytes() >= empty + 10_000

    def test_try_add_returns_fingerprint_only_when_hashed(self):
        store = DocumentStore()
        added, ordinal, fingerprint = store.try_add(doc())
        assert added and ordinal == 0
        assert fingerprint == content_hash("some text")
        # id duplicate: rejected before hashing, no fingerprint.
        added, ordinal, fingerprint = store.try_add(doc(text="other"))
        assert (added, ordinal, fingerprint) == (False, -1, None)

    def test_metadata_shapes_survive_roundtrip(self, tmp_path):
        store = DocumentStore()
        standard = {"doc_type": "ma_news", "published_day": 7}
        overflow = {"doc_type": "ma_news", "tags": ["a", "b"]}
        store.add(StoredDocument(
            doc_id="a", url="http://a", title="t", text="one",
            metadata=dict(standard),
        ))
        store.add(StoredDocument(
            doc_id="b", url="http://b", title="t", text="two",
            metadata=dict(overflow),
        ))
        assert store.get("a").metadata == standard
        assert store.get("b").metadata == overflow
        path = tmp_path / "docs.jsonl"
        store.save_jsonl(path)
        loaded = DocumentStore.load_jsonl(path)
        assert loaded.get("a").metadata == standard
        assert loaded.get("b").metadata == overflow

    def test_get_returns_canonical_mutable_view(self):
        """Callers patch metadata in place (the alert-horizon tests
        do); every access path must observe the same dict."""
        store = DocumentStore()
        store.add(StoredDocument(
            doc_id="a", url="http://a", title="t", text="one",
            metadata={"published_day": 3},
        ))
        store.get("a").metadata.pop("published_day")
        assert store.get("a").metadata == {}
        assert store.get_by_url("http://a").metadata == {}
        assert [d.metadata for d in store] == [{}]
