"""Publication-calendar tests: timestamps through the pipeline."""

from __future__ import annotations

import pytest

from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.web import build_web


class TestGeneratorTimestamps:
    def test_days_within_timeline(self):
        config = CorpusConfig(seed=2, timeline_days=30)
        generator = CorpusGenerator(config)
        for document in generator.generate(100):
            assert 0 <= document.published_day < 30

    def test_days_vary(self):
        generator = CorpusGenerator(CorpusConfig(seed=2))
        days = {d.published_day for d in generator.generate(100)}
        assert len(days) > 10

    def test_mirror_lags_original(self):
        generator = CorpusGenerator(
            CorpusConfig(seed=2, mirror_rate=1.0)
        )
        documents = generator.generate(60)
        for index, document in enumerate(documents):
            if "mirror.example.com" not in document.url:
                continue
            original = documents[index - 1]
            assert (
                original.published_day
                <= document.published_day
                <= original.published_day + 2
            )


class TestEvolverTimestamps:
    def test_new_docs_dated_after_timeline(self):
        web = build_web(100, CorpusConfig(seed=5, timeline_days=30))
        evolver = WebEvolver(
            web, CorpusConfig(seed=6, timeline_days=30)
        )
        first = evolver.advance(5)
        second = evolver.advance(5)
        assert all(d.published_day == 31 for d in first)
        assert all(d.published_day == 32 for d in second)


class TestFreshnessWindow:
    @pytest.fixture(scope="class")
    def trained(self):
        web = build_web(400, CorpusConfig(seed=13, timeline_days=60))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=60, negative_sample_size=800
            ),
        )
        etap.gather()
        etap.train()
        return etap

    def test_published_day_stored(self, trained):
        document = next(iter(trained.store))
        assert "published_day" in document.metadata

    def test_since_day_filters_old_documents(self, trained):
        all_events = trained.extract_trigger_events()
        fresh_events = trained.extract_trigger_events(since_day=40)
        for driver_id in all_events:
            assert len(fresh_events[driver_id]) <= len(
                all_events[driver_id]
            )
            for event in fresh_events[driver_id]:
                published = trained.store.get(
                    event.item.snippet.doc_id
                ).metadata["published_day"]
                assert published >= 40

    def test_since_day_zero_keeps_everything(self, trained):
        all_events = trained.extract_trigger_events()
        windowed = trained.extract_trigger_events(since_day=0)
        for driver_id in all_events:
            assert len(windowed[driver_id]) == len(
                all_events[driver_id]
            )
