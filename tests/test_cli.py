"""CLI tests: the gather -> train -> extract -> report workflow."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    ws = tmp_path_factory.mktemp("etap-ws")
    code = main([
        "gather", "--workspace", str(ws), "--docs", "500",
        "--seed", "3",
    ])
    assert code == 0
    code = main([
        "train", "--workspace", str(ws),
        "--top-k", "60", "--negatives", "1000",
    ])
    assert code == 0
    return ws


class TestGather:
    def test_store_written(self, workspace):
        assert (workspace / "store.jsonl").exists()

    def test_gather_output(self, workspace, capsys):
        main(["gather", "--workspace", str(workspace), "--docs", "100"])
        out = capsys.readouterr().out
        assert "gathered 100 documents" in out
        # Restore the 500-doc store for the later stages.
        main([
            "gather", "--workspace", str(workspace), "--docs", "500",
            "--seed", "3",
        ])


class TestTrain:
    def test_models_written(self, workspace):
        models = list((workspace / "models").glob("*.classifier.json"))
        assert len(models) == 3

    def test_train_before_gather_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--workspace", str(tmp_path / "empty")])


class TestExtract:
    def test_extract_all_drivers(self, workspace, capsys):
        code = main([
            "extract", "--workspace", str(workspace), "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mergers_acquisitions" in out
        assert "change_in_management" in out
        assert "Rank" in out

    def test_extract_single_driver(self, workspace, capsys):
        code = main([
            "extract", "--workspace", str(workspace),
            "--driver", "revenue_growth", "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "revenue_growth" in out
        assert "mergers_acquisitions" not in out

    def test_unknown_driver_fails(self, workspace):
        with pytest.raises(SystemExit):
            main([
                "extract", "--workspace", str(workspace),
                "--driver", "steel_output",
            ])

    def test_extract_before_train_fails(self, tmp_path, capsys):
        ws = tmp_path / "fresh"
        main(["gather", "--workspace", str(ws), "--docs", "50"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["extract", "--workspace", str(ws)])


class TestReport:
    def test_company_report(self, workspace, capsys):
        code = main([
            "report", "--workspace", str(workspace), "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRR" in out
        assert "Company" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--docs", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trigger events per driver" in out
        assert "top leads" in out


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_available(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestStats:
    def test_stats_output(self, capsys):
        code = main(["stats", "--docs", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "documents:           200" in out
        assert "trigger documents:" in out


class TestReproduce:
    def test_reproduce_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main([
            "reproduce", "--out", str(out_path), "--scale", "small",
        ])
        assert code == 0
        text = out_path.read_text(encoding="utf-8")
        assert "Table 1" in text
        assert "Figure 8" in text


class TestTrace:
    def test_trace_emits_valid_json(self, capsys):
        import json

        code = main(["trace", "--docs", "300"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        span_names = [span["name"] for span in payload["spans"]]
        assert "gather" in span_names
        assert "train" in span_names
        assert "extract" in span_names
        for span in payload["spans"]:
            assert span["seconds"] > 0
        assert payload["counters"]["crawl.pages_fetched"] > 0
        assert "engine.search_seconds" in payload["histograms"]


class TestProfileFlag:
    """``--profile`` prints a per-stage tree to stderr, everywhere."""

    @staticmethod
    def _stderr_tree(capsys):
        err = capsys.readouterr().err
        assert err.startswith("stage"), err
        assert "wall s" in err
        assert "items/s" in err
        return err

    def test_demo_profile_prints_stage_tree(self, capsys):
        code = main(["demo", "--docs", "300", "--profile"])
        assert code == 0
        tree = self._stderr_tree(capsys)
        for stage in (
            "gather.crawl",
            "train.negative_sample",
            "extract.annotate",
            "rank.companies",
        ):
            assert stage in tree

    def test_gather_profile(self, tmp_path, capsys):
        code = main([
            "gather", "--workspace", str(tmp_path / "ws"),
            "--docs", "100", "--profile",
        ])
        assert code == 0
        tree = self._stderr_tree(capsys)
        assert "gather.crawl" in tree
        assert "crawl.pages_fetched" in tree

    def test_train_extract_report_profile(self, workspace, capsys):
        code = main([
            "train", "--workspace", str(workspace),
            "--top-k", "60", "--negatives", "1000", "--profile",
        ])
        assert code == 0
        assert "train.fit[" in self._stderr_tree(capsys)

        code = main([
            "extract", "--workspace", str(workspace), "--top", "2",
            "--profile",
        ])
        assert code == 0
        assert "extract.score[" in self._stderr_tree(capsys)

        code = main([
            "report", "--workspace", str(workspace), "--top", "3",
            "--profile",
        ])
        assert code == 0
        assert "rank.companies" in self._stderr_tree(capsys)

    def test_stats_profile(self, capsys):
        code = main(["stats", "--docs", "200", "--profile"])
        assert code == 0
        assert "stats" in self._stderr_tree(capsys)

    def test_trace_profile_tree_and_json(self, capsys):
        import json

        code = main(["trace", "--docs", "300", "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.err.startswith("stage")
        assert json.loads(captured.out)["spans"]

    def test_reproduce_accepts_profile_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "reproduce", "--out", "r.md", "--profile",
        ])
        assert args.profile is True
        assert args.scale == "small"

    def test_without_profile_stderr_is_clean(self, capsys):
        code = main(["stats", "--docs", "100"])
        assert code == 0
        assert capsys.readouterr().err == ""


class TestIndexCache:
    def test_gather_writes_index_cache(self, workspace):
        assert (workspace / "index.json").exists()

    def test_report_with_industry(self, workspace, capsys):
        code = main([
            "report", "--workspace", str(workspace),
            "--industry", "steel", "--top", "3",
        ])
        assert code == 0
        assert "MRR" in capsys.readouterr().out

    def test_report_with_unknown_industry(self, workspace):
        with pytest.raises(KeyError):
            main([
                "report", "--workspace", str(workspace),
                "--industry", "buggy-whips",
            ])


class TestFlightRecorder:
    """--record, events, explain, and metrics commands."""

    @pytest.fixture(scope="class")
    def recording(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("rec") / "events.jsonl"
        code = main([
            "demo", "--docs", "300", "--seed", "7",
            "--cycles", "2", "--new-docs", "25",
            "--alert-threshold", "0.7",
            "--record", str(path),
        ])
        assert code == 0
        return path

    def test_recorded_log_validates(self, recording):
        from repro.obs.events import validate_jsonl

        lines = recording.read_text(encoding="utf-8").splitlines()
        assert len(lines) > 100
        assert validate_jsonl(lines) == []

    def test_recorded_log_covers_the_pipeline(self, recording):
        from collections import Counter

        from repro.obs.events import read_events

        counts = Counter(e.event_type for e in read_events(recording))
        for event_type in (
            "run_started",
            "page_crawled",
            "doc_indexed",
            "search_executed",
            "model_trained",
            "snippet_scored",
            "trigger_classified",
            "company_ranked",
            "alert_emitted",
        ):
            assert counts[event_type] > 0, event_type

    def test_events_validate_command(self, recording, capsys):
        code = main(["events", "--validate", str(recording)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_events_validate_rejects_bad_log(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event_type": "nope"}\n', encoding="utf-8")
        code = main(["events", "--validate", str(bad)])
        assert code == 1
        assert "bad.jsonl:1" in capsys.readouterr().err

    def test_events_listing_and_filter(self, recording, capsys):
        code = main([
            "events", "--file", str(recording),
            "--type", "alert_emitted", "--tail", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(out) <= 5
        assert all("alert_emitted" in line for line in out)

    def test_events_without_source_fails(self):
        with pytest.raises(SystemExit):
            main(["events"])

    def test_explain_renders_full_chain(self, recording, capsys):
        from repro.obs.events import read_events

        alerts = [
            e for e in read_events(recording)
            if e.event_type == "alert_emitted"
        ]
        assert alerts, "demo run with cycles must emit alerts"
        alert_id = alerts[0].payload["alert_id"]
        code = main([
            "explain", alert_id, "--events", str(recording),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"alert {alert_id}" in out
        assert "driver" in out
        assert "snippet" in out
        assert "url http" in out

    def test_explain_unknown_alert_fails(self, recording):
        with pytest.raises(SystemExit):
            main(["explain", "bogus", "--events", str(recording)])

    def test_explain_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "explain", "x",
                "--events", str(tmp_path / "absent.jsonl"),
            ])

    def test_metrics_emits_prometheus_text(self, capsys):
        from repro.obs.export import parse_prometheus_text

        code = main(["metrics", "--docs", "300", "--seed", "7"])
        assert code == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        names = {name for name, _ in samples}
        assert "repro_crawl_pages_fetched" in names
        assert "repro_dedup_ratio" in names
        assert any(
            name == "repro_positive_rate" and labels
            for name, labels in samples
        )

    def test_metrics_includes_windowed_telemetry(self, capsys):
        from repro.obs.export import parse_prometheus_text

        code = main(["metrics", "--docs", "200", "--seed", "7"])
        assert code == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        windowed = {
            dict(labels).get("series")
            for name, labels in samples
            if name == "repro_window_rate"
        }
        assert "ingest.docs" in windowed
        assert "ingest.pages" in windowed

    def test_metrics_watch_redumps_each_round(self, capsys):
        code = main([
            "metrics", "--docs", "200", "--seed", "7",
            "--watch", "0", "--rounds", "2", "--new-docs", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("# watch round") == 2
        # Each dump must still parse; the counters grow monotonically.
        from repro.obs.export import parse_prometheus_text

        dumps = out.split("# watch round")
        assert len(dumps) == 3
        first = parse_prometheus_text(dumps[0])
        last = parse_prometheus_text(
            "\n".join(dumps[-1].splitlines()[1:])
        )
        key = ("repro_gather_documents_stored", ())
        assert last[key] >= first[key]


class TestHealthCommand:
    def test_health_text_rollup(self, capsys):
        code = main([
            "health", "--docs", "200", "--seed", "7",
            "--queries", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall: ok" in out
        assert "fetch-availability" in out

    def test_health_accepts_committed_yaml_config(self, capsys):
        code = main([
            "health", "--docs", "200", "--seed", "7",
            "--queries", "20", "--slo-config", "configs/slos.yaml",
        ])
        assert code == 0
        assert "stream-freshness" in capsys.readouterr().out


class TestServeSloConfig:
    def test_serve_prints_rollup_and_slo_gauges(self, capsys):
        from repro.obs.export import parse_prometheus_text

        code = main([
            "serve", "--docs", "150", "--seed", "7",
            "--queries", "30", "--clients", "2",
            "--slo-config", "default",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall:" in out
        # The serve.* metric dump carries the SLO budget/burn gauges.
        block = out.split("serve.* metrics:")[1]
        samples = parse_prometheus_text(block)
        slo_names = {
            dict(labels).get("slo")
            for name, labels in samples
            if name == "repro_slo_budget_remaining"
        }
        assert "serve-latency-p99" in slo_names


class TestTopCommand:
    def test_top_renders_frames(self, capsys):
        code = main([
            "top", "--docs", "200", "--seed", "7", "--rounds", "2",
            "--refresh", "0", "--queries-per-round", "15",
            "--no-clear",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("repro top — round") == 2
        assert "qps(60s):" in out
        assert "p99:" in out
        assert "budgets remaining:" in out
        assert "cache hit rate:" in out


class TestFaultProfile:
    """End-to-end `--fault-profile`: gather, validate events, metrics."""

    def test_gather_under_hostile_profile_completes_and_reports(
        self, tmp_path, capsys
    ):
        ws = tmp_path / "chaos-ws"
        log = tmp_path / "events.jsonl"
        code = main([
            "gather", "--workspace", str(ws), "--docs", "200",
            "--seed", "7", "--fault-profile", "hostile",
            "--record", str(log),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gathered" in out
        assert "[degraded:" in out, (
            "hostile gather printed no degradation note"
        )
        assert (ws / "store.jsonl").exists()
        # Every recorded event — including the new fetch_retry /
        # breaker_* / fetch_dead_letter kinds — passes schema checks.
        code = main(["events", "--validate", str(log)])
        assert code == 0
        assert "events OK" in capsys.readouterr().out

    def test_fault_events_appear_in_the_recording(self, tmp_path):
        from repro.obs.events import read_events

        ws = tmp_path / "chaos-ws"
        log = tmp_path / "events.jsonl"
        main([
            "gather", "--workspace", str(ws), "--docs", "200",
            "--seed", "7", "--fault-profile", "hostile",
            "--record", str(log),
        ])
        kinds = {event.event_type for event in read_events(log)}
        assert "fetch_retry" in kinds
        assert "fetch_dead_letter" in kinds

    def test_metrics_exports_fetch_counters(self, capsys):
        from repro.obs.export import parse_prometheus_text

        code = main([
            "metrics", "--docs", "200", "--seed", "7",
            "--fault-profile", "flaky",
        ])
        assert code == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        names = {name for name, _ in samples}
        assert "repro_fetch_attempts" in names
        assert "repro_fetch_retries" in names

    def test_unknown_profile_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "gather", "--workspace", str(tmp_path / "ws"),
                "--docs", "50", "--fault-profile", "nope",
            ])
