"""Tier-1 smoke test for the benchmark harness.

The ``benchmarks/`` scripts only run under ``pytest-benchmark`` against
session-scoped paper/medium datasets, so tier-1 runs never import them
— a refactor can silently break every bench.  This smoke test loads one
benchmark script and drives it at toy scale through a stub ``benchmark``
fixture, so the bench's imports, plumbing, and assertions stay honest.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module(name: str):
    spec = importlib.util.spec_from_file_location(
        name, BENCHMARKS_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Bench scripts import siblings (corpus_shape) by bare name, as
    # they do when pytest collects benchmarks/ directly.
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return module


class StubBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture."""

    def __init__(self) -> None:
        self.extra_info: dict = {}

    def pedantic(self, func, args=(), kwargs=None, rounds=1,
                 iterations=1):
        return func(*args, **(kwargs or {}))

    def __call__(self, func, *args, **kwargs):
        return func(*args, **kwargs)


@pytest.mark.bench_smoke
def test_fig8_bench_runs_at_toy_scale(trained_etap, small_dataset):
    module = _load_bench_module("bench_fig8_semantic_orientation")
    stub = StubBenchmark()
    # ``trained_etap`` is ``small_dataset.etap`` post-training, so the
    # bench runs the real extraction + re-ranking path at toy scale.
    module.bench_figure8_orientation(stub, small_dataset)
    assert stub.extra_info["n_events"] > 0


@pytest.mark.bench_smoke
def test_all_benchmark_scripts_importable():
    """Every bench script must at least import against current APIs."""
    scripts = sorted(BENCHMARKS_DIR.glob("bench_*.py"))
    assert scripts, "no benchmark scripts found"
    for path in scripts:
        _load_bench_module(path.stem)


@pytest.mark.bench_smoke
def test_obs_overhead_bench_at_toy_scale(tmp_path):
    """The recorder bench runs, emits its JSON, and the off path stays
    a no-op (the acceptance check for 'no measurable overhead')."""
    module = _load_bench_module("bench_obs_overhead")
    out = tmp_path / "BENCH_obs.json"
    payload = module.measure(n_docs=200, seed=7, rounds=1, out=out)
    assert out.exists()
    import json

    assert json.loads(out.read_text()) == payload
    assert payload["event_counts"]["page_crawled"] > 0
    assert payload["event_counts"]["model_trained"] == 3
    assert payload["events_emitted"] > 0
    # Recorder-off is the default null-object path: a single no-op
    # call, far below a microsecond.
    assert payload["null_emit_seconds_per_call"] < 5e-6


@pytest.mark.bench_smoke
def test_serve_bench_at_toy_scale(tmp_path):
    """The serving bench runs end to end and its payload validates."""
    module = _load_bench_module("bench_serve")
    out = tmp_path / "BENCH_serve.json"
    payload = module.measure(
        n_docs=120, n_clients=3, n_queries=40, n_shards=2,
        seed=7, out=out,
    )
    assert out.exists()
    assert module.validate_payload(payload) == []
    assert payload["statuses"] == {"ok": 40}


@pytest.mark.bench_smoke
def test_ingest_bench_at_toy_scale(tmp_path):
    """The ingestion bench runs end to end and its payload validates."""
    import json

    module = _load_bench_module("bench_ingest")
    out = tmp_path / "BENCH_ingest.json"
    payload = module.measure(n_docs=150, seed=7, out=out)
    assert out.exists()
    assert json.loads(out.read_text()) == payload
    assert module.validate_payload(payload) == []
    # Self-baselined run: the same numbers on both sides, ratio 1.0.
    assert payload["speedup"] == 1.0
    # The annotate-once floor holds even at toy scale.
    assert payload["current"]["cache"]["hit_rate"] >= 0.5


@pytest.mark.bench_smoke
def test_ingest_bench_parallel_warm_matches_serial(tmp_path):
    """--workers must not change what the measured pipeline produces."""
    module = _load_bench_module("bench_ingest")
    serial = module.run_once(n_docs=120, seed=7, workers=1)
    parallel = module.run_once(n_docs=120, seed=7, workers=4)
    for key in ("documents_stored", "n_trigger_events"):
        assert parallel[key] == serial[key]


@pytest.mark.bench_smoke
def test_committed_ingest_bench_artifact_validates():
    """benchmarks/BENCH_ingest.json must validate AND meet the
    acceptance floors of the ingestion overhaul: >= 3x end-to-end
    against the recorded pre-optimization baseline, cache hit rate
    >= 0.5, and identical trigger-event output on both runs (a perf win
    that changes the output would be vacuous)."""
    import json

    module = _load_bench_module("bench_ingest")
    artifact = BENCHMARKS_DIR / "BENCH_ingest.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []
    assert payload["speedup"] >= 3.0
    assert payload["current"]["cache"]["hit_rate"] >= 0.5
    assert (
        payload["current"]["n_trigger_events"]
        == payload["baseline"]["n_trigger_events"]
    )


@pytest.mark.bench_smoke
def test_stream_bench_at_toy_scale(tmp_path):
    """The streaming bench runs end to end — including its built-in
    crash/resume leg — and its payload validates."""
    import json

    module = _load_bench_module("bench_stream")
    out = tmp_path / "BENCH_stream.json"
    payload = module.measure(
        n_docs=120, seed=7, cycles=2, docs_per_cycle=8, out=out,
    )
    assert out.exists()
    assert json.loads(out.read_text()) == payload
    assert module.validate_payload(payload) == []
    assert payload["throughput"]["streamed_docs"] == 16
    assert payload["recovery"]["converged"] is True


@pytest.mark.bench_smoke
def test_committed_stream_bench_artifact_validates():
    """benchmarks/BENCH_stream.json must validate AND meet the
    streaming acceptance floors: alerts mint within a cycle of their
    document's arrival (freshness p99 <= 1), sustained throughput is
    non-trivial, and the crashed run converged to the uninterrupted
    alert set in bounded time."""
    import json

    module = _load_bench_module("bench_stream")
    artifact = BENCHMARKS_DIR / "BENCH_stream.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []
    throughput = payload["throughput"]
    assert throughput["freshness_cycles_p99"] <= 1.0
    # The committed run sustains ~400 docs/sec; 20 is a generous floor
    # that still catches an accidental quadratic in the cycle path.
    assert throughput["docs_per_sec"] >= 20.0
    recovery = payload["recovery"]
    assert recovery["converged"] is True
    assert recovery["recovery_seconds"] <= 10.0
    assert recovery["recovered_alerts"] > 0, (
        "the crash landed before any alert was durable — move "
        "kill_after so the recovery leg exercises WAL replay"
    )


@pytest.mark.bench_smoke
def test_slo_overhead_bench_at_toy_scale(tmp_path):
    """The SLO telemetry bench runs, emits its JSON, and the floors
    hold at toy scale (the off path is a no-op; the sketch does not
    grow between its small and large runs)."""
    import json

    module = _load_bench_module("bench_slo_overhead")
    out = tmp_path / "BENCH_slo.json"
    payload = module.measure(
        n_observations=10_000, timing_calls=20_000, out=out,
    )
    assert out.exists()
    assert json.loads(out.read_text()) == payload
    assert module.validate_payload(payload) == []
    assert payload["sketch_growth_ratio"] <= 1.01
    assert payload["null_record_seconds_per_call"] < 5e-6


@pytest.mark.bench_smoke
def test_committed_slo_bench_artifact_validates():
    """benchmarks/BENCH_slo.json must validate AND meet the PR's
    acceptance floors: the sketch is constant-size at 1M observations
    (within 1% of its 1k-observation footprint, and a rounding error
    next to the raw list it replaces) and recording overhead stays
    under the declared per-call floors."""
    import json

    module = _load_bench_module("bench_slo_overhead")
    artifact = BENCHMARKS_DIR / "BENCH_slo.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []
    assert payload["n_observations"] == 1_000_000
    assert payload["sketch_growth_ratio"] <= 1.01
    assert payload["sketch_vs_raw_ratio"] <= 0.01
    assert (
        payload["real_record_seconds_per_call"]
        < payload["floors"]["real_record_seconds_per_call"]
    )


@pytest.mark.bench_smoke
def test_committed_serve_bench_artifact_validates():
    """benchmarks/BENCH_serve.json must match the bench's own schema,
    so a schema change cannot outrun the committed artifact."""
    import json

    module = _load_bench_module("bench_serve")
    artifact = BENCHMARKS_DIR / "BENCH_serve.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []


@pytest.mark.bench_smoke
@pytest.mark.chaos_serve
def test_serve_chaos_bench_acceptance(tmp_path):
    """The chaos acceptance run holds its SLOs — non-vacuously.

    Time is simulated, so the full chaos storm (replica kill/restore
    churn, lossy replica faults, hedged fan-out) runs in seconds and
    belongs in tier 1.  The hedged leg must keep every serve SLO from
    ``configs/slos.yaml`` under burn 1.0 on both windows while at
    least one replica per group is killed and restored; the identical
    run with hedging disabled must breach the latency SLO, proving the
    chaos schedule actually hurts.
    """
    module = _load_bench_module("bench_serve_chaos")
    out = tmp_path / "BENCH_serve_chaos.json"
    payload = module.measure(n_docs=200, out=out)
    assert out.exists()
    # validate_payload() encodes the acceptance criteria themselves.
    assert module.validate_payload(payload) == []
    hedged = payload["legs"]["hedged"]
    unhedged = payload["legs"]["unhedged"]
    # Chaos really ran: every group lost and regained a replica (the
    # monkey kills one replica of *every* group per cycle).
    assert hedged["kills"] >= 1 and hedged["restores"] >= 1
    assert unhedged["kills"] >= 1
    # The hedged cluster rides it out: nothing pages, and both burn
    # windows stay under 1.0 for every serve objective.
    assert hedged["breaching"] == []
    for verdict in hedged["slos"].values():
        assert verdict["burn_fast"] < 1.0
        assert verdict["burn_slow"] < 1.0
    # No query is ever lost to the storm — degraded, maybe; gone, no.
    assert hedged["statuses"] == {"ok": payload["n_queries"]}
    # The control leg keeps the pass honest: same storm, no hedging,
    # and the p99 blows through the latency target.
    assert "serve-latency-p99" in unhedged["breaching"]


@pytest.mark.bench_smoke
def test_queries_bench_at_toy_scale(tmp_path):
    """The planner bench runs end to end at toy scale and its payload
    is schema-complete (the >= 2-drivers-improved acceptance floor is
    only enforced on the committed reference artifact — at toy scale
    the comparison is allowed to go either way)."""
    import json

    module = _load_bench_module("bench_queries")
    out = tmp_path / "BENCH_queries.json"
    payload = module.measure(
        n_docs=150, seed=7, budget=30, top_k=20, out=out,
    )
    assert out.exists()
    assert json.loads(out.read_text()) == payload
    schema_errors = [
        error
        for error in module.validate_payload(payload)
        if "must beat the hand-written" not in error
    ]
    assert schema_errors == []
    assert set(payload["drivers"]) >= {"funding_rounds", "layoffs"}
    for plan in payload["drivers"].values():
        assert plan["planned"]["total_cost"] <= 30


@pytest.mark.bench_smoke
def test_committed_queries_bench_artifact_validates():
    """benchmarks/BENCH_queries.json must validate AND meet the PR's
    acceptance floor: the planned portfolio beats the hand-written
    queries on precision@budget (or ties at strictly lower cost) for
    >= 2 drivers, with both extended drivers measured."""
    import json

    module = _load_bench_module("bench_queries")
    artifact = BENCHMARKS_DIR / "BENCH_queries.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []
    assert payload["n_drivers_improved"] >= 2
    for driver_id in ("funding_rounds", "layoffs"):
        assert payload["drivers"][driver_id]["improved"] is True, (
            f"the committed artifact no longer shows planner lift "
            f"for {driver_id}"
        )


@pytest.mark.bench_smoke
@pytest.mark.chaos_serve
def test_committed_serve_chaos_artifact_validates():
    """benchmarks/BENCH_serve_chaos.json must satisfy the acceptance
    criteria its own bench encodes: hedged leg green under chaos,
    unhedged control breaching."""
    import json

    module = _load_bench_module("bench_serve_chaos")
    artifact = BENCHMARKS_DIR / "BENCH_serve_chaos.json"
    payload = json.loads(artifact.read_text())
    assert module.validate_payload(payload) == []
    assert payload["legs"]["hedged"]["breaching"] == []
    assert payload["legs"]["unhedged"]["breaching"] == [
        "serve-latency-p99"
    ]


@pytest.mark.bench_smoke
def test_ingest_tier_bench_at_toy_scale():
    """The sharded ingestion tier runs at toy scale through real worker
    processes and clears generous floors: >= 3x the recorded 258.9
    docs/sec end-to-end baseline (the full 10x floor is asserted
    against the committed 100k artifact) and a recorded, sane
    memory-per-doc figure."""
    module = _load_bench_module("bench_ingest")
    tier = module.run_ingest_tier(n_docs=600, workers=2)
    assert tier["workers"] == 2
    assert tier["documents_stored"] > 0
    assert tier["docs_per_sec"] >= 3 * 258.9
    assert 0 < tier["memory_bytes_per_doc"] < 100_000
    assert tier["cache"]["hits"] > 0  # sentence memo saw reuse


@pytest.mark.bench_smoke
def test_committed_ingest_tier_meets_10x_floor():
    """The committed artifact's ``tier_100k`` section is the PR's
    acceptance evidence: a 100k-document run through the
    process-sharded flat-buffer path at >= 10x the pre-optimization
    end-to-end baseline, with memory per stored document on record."""
    import json

    module = _load_bench_module("bench_ingest")
    artifact = BENCHMARKS_DIR / "BENCH_ingest.json"
    payload = json.loads(artifact.read_text())
    tier = payload.get("tier_100k")
    assert tier is not None, "tier_100k missing from BENCH_ingest.json"
    assert tier["n_docs"] >= 100_000
    assert tier["workers"] > 1
    assert tier["speedup_vs_baseline"] >= 10.0
    assert 0 < tier["memory_bytes_per_doc"] < 100_000
    assert tier["cache"]["hit_rate"] >= 0.5
