"""Noise-tolerant training tests: ETAP iterative denoiser, Brodley-Friedl."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.noise import (
    IterativeNoiseReducer,
    brodley_friedl_filter,
)


def noisy_pu_setup(seed=13, n_true=60, n_noise=25, n_neg=200):
    """Noisy positives = true positives + background contamination."""
    rng = np.random.default_rng(seed)

    def topic(kind, n):
        probs = (
            [0.30, 0.30, 0.20, 0.07, 0.07, 0.06]
            if kind == "pos"
            else [0.06, 0.07, 0.07, 0.20, 0.30, 0.30]
        )
        return rng.multinomial(25, probs, size=n).astype(float)

    X_true = topic("pos", n_true)
    X_contamination = topic("neg", n_noise)
    X_noisy = sparse.csr_matrix(np.vstack([X_true, X_contamination]))
    X_negative = sparse.csr_matrix(topic("neg", n_neg))
    truth_mask = np.array([True] * n_true + [False] * n_noise)
    return X_noisy, X_negative, truth_mask


class TestIterativeReducer:
    def test_drops_contamination(self):
        X_noisy, X_negative, truth = noisy_pu_setup()
        result = IterativeNoiseReducer(max_iter=4).fit(X_noisy, X_negative)
        dropped = ~result.kept_mask
        # Most of what was dropped is genuine contamination.
        assert dropped.sum() > 0
        precision_of_drop = (~truth)[dropped].mean()
        assert precision_of_drop >= 0.8

    def test_keeps_true_positives(self):
        X_noisy, X_negative, truth = noisy_pu_setup()
        result = IterativeNoiseReducer(max_iter=4).fit(X_noisy, X_negative)
        assert result.kept_mask[truth].mean() >= 0.9

    def test_history_recorded(self):
        X_noisy, X_negative, _ = noisy_pu_setup()
        result = IterativeNoiseReducer(max_iter=3).fit(
            X_noisy, X_negative
        )
        assert 1 <= result.n_iterations <= 3
        for entry in result.history:
            assert entry.kept_noisy + entry.dropped_noisy == (
                X_noisy.shape[0]
            )

    def test_converges_early_when_stable(self):
        X_noisy, X_negative, _ = noisy_pu_setup()
        result = IterativeNoiseReducer(
            max_iter=10, min_change=0.01
        ).fit(X_noisy, X_negative)
        assert result.n_iterations < 10

    def test_final_model_is_usable(self):
        X_noisy, X_negative, truth = noisy_pu_setup()
        result = IterativeNoiseReducer().fit(X_noisy, X_negative)
        predictions = result.model.predict(X_noisy)
        assert (predictions[truth] == 1).mean() >= 0.9

    def test_pure_positive_oversampling_used(self):
        X_noisy, X_negative, _ = noisy_pu_setup()
        X_pure = X_noisy[:5]
        result = IterativeNoiseReducer(oversample_pure=3).fit(
            X_noisy, X_negative, X_pure
        )
        assert result.model is not None

    def test_min_kept_floor(self):
        # All-noise positives: the guard keeps at least min_kept rows.
        rng = np.random.default_rng(0)
        X_noisy = sparse.csr_matrix(
            rng.multinomial(20, [1 / 6] * 6, size=12).astype(float)
        )
        X_negative = sparse.csr_matrix(
            rng.multinomial(20, [1 / 6] * 6, size=200).astype(float)
        )
        result = IterativeNoiseReducer(min_kept=5).fit(
            X_noisy, X_negative
        )
        assert result.kept_mask.sum() >= 5

    def test_empty_noisy_set_rejected(self):
        X = sparse.csr_matrix((0, 4))
        N = sparse.csr_matrix(np.eye(4))
        with pytest.raises(ValueError):
            IterativeNoiseReducer().fit(X, N)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IterativeNoiseReducer(max_iter=0)
        with pytest.raises(ValueError):
            IterativeNoiseReducer(oversample_pure=0)


class TestBrodleyFriedl:
    def test_flags_mislabeled_instances(self):
        rng = np.random.default_rng(21)

        def topic(kind, n):
            probs = (
                [0.30, 0.30, 0.20, 0.07, 0.07, 0.06]
                if kind == "pos"
                else [0.06, 0.07, 0.07, 0.20, 0.30, 0.30]
            )
            return rng.multinomial(25, probs, size=n).astype(float)

        X = sparse.csr_matrix(np.vstack([
            topic("pos", 50), topic("neg", 50), topic("neg", 12),
        ]))
        # Last 12 rows are negative-topic but labeled positive.
        y = np.array([1] * 50 + [0] * 50 + [1] * 12)
        keep = brodley_friedl_filter(X, y, n_folds=4)
        flagged = ~keep
        assert flagged[100:].mean() >= 0.7  # mislabeled caught
        assert flagged[:100].mean() <= 0.15  # clean data kept

    def test_consensus_is_more_conservative(self):
        from repro.ml.naive_bayes import (
            BernoulliNaiveBayes,
            MultinomialNaiveBayes,
        )

        rng = np.random.default_rng(4)
        X = sparse.csr_matrix(
            rng.multinomial(20, [1 / 4] * 4, size=80).astype(float)
        )
        y = rng.integers(0, 2, size=80)
        factories = [MultinomialNaiveBayes, BernoulliNaiveBayes]
        majority_kept = brodley_friedl_filter(
            X, y, factories, consensus=False
        ).sum()
        consensus_kept = brodley_friedl_filter(
            X, y, factories, consensus=True
        ).sum()
        assert consensus_kept >= majority_kept

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        X = sparse.csr_matrix(
            rng.multinomial(20, [1 / 4] * 4, size=40).astype(float)
        )
        y = rng.integers(0, 2, size=40)
        a = brodley_friedl_filter(X, y, seed=1)
        b = brodley_friedl_filter(X, y, seed=1)
        assert np.array_equal(a, b)

    def test_invalid_folds(self):
        X = sparse.csr_matrix(np.eye(4))
        y = np.array([0, 1, 0, 1])
        with pytest.raises(ValueError):
            brodley_friedl_filter(X, y, n_folds=1)

    def test_shape_mismatch(self):
        X = sparse.csr_matrix(np.eye(4))
        with pytest.raises(ValueError):
            brodley_friedl_filter(X, np.array([0, 1]))
