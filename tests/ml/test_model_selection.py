"""Model-selection tests: stratified folds, CV, grid search."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.model_selection import (
    cross_validate_f1,
    grid_search,
    stratified_kfold_indices,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes


def topic_data(seed=3, n=80):
    rng = np.random.default_rng(seed)

    def draw(kind, count):
        probs = (
            [0.3, 0.3, 0.2, 0.08, 0.07, 0.05]
            if kind else [0.05, 0.07, 0.08, 0.2, 0.3, 0.3]
        )
        return rng.multinomial(20, probs, size=count).astype(float)

    X = sparse.csr_matrix(np.vstack([draw(1, n // 4), draw(0, 3 * n // 4)]))
    y = np.array([1] * (n // 4) + [0] * (3 * n // 4))
    return X, y


class TestStratifiedKfold:
    def test_partitions_everything(self):
        _, y = topic_data()
        seen = []
        for train_idx, test_idx in stratified_kfold_indices(y, 4):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx)
        assert sorted(seen) == list(range(len(y)))

    def test_class_balance_preserved(self):
        _, y = topic_data()
        overall = y.mean()
        for _, test_idx in stratified_kfold_indices(y, 4):
            fold_rate = y[test_idx].mean()
            assert abs(fold_rate - overall) < 0.1

    def test_deterministic(self):
        _, y = topic_data()
        a = [tuple(t) for _, t in stratified_kfold_indices(y, 3, seed=1)]
        b = [tuple(t) for _, t in stratified_kfold_indices(y, 3, seed=1)]
        assert a == b

    def test_invalid_folds(self):
        with pytest.raises(ValueError):
            list(stratified_kfold_indices([0, 1], n_folds=1))

    def test_more_folds_than_samples(self):
        with pytest.raises(ValueError):
            list(stratified_kfold_indices([0, 1], n_folds=5))


class TestCrossValidate:
    def test_separable_data_scores_high(self):
        X, y = topic_data()
        result = cross_validate_f1(MultinomialNaiveBayes, X, y, 4)
        assert result.mean_f1 >= 0.8
        assert len(result.fold_f1) == 4
        assert result.std_f1 >= 0.0

    def test_mean_matches_folds(self):
        X, y = topic_data()
        result = cross_validate_f1(MultinomialNaiveBayes, X, y, 4)
        assert result.mean_f1 == pytest.approx(
            float(np.mean(result.fold_f1)), abs=1e-6
        )


class TestGridSearch:
    def test_finds_best_alpha(self):
        X, y = topic_data()
        result = grid_search(
            MultinomialNaiveBayes,
            {"alpha": [0.01, 1.0, 100.0]},
            X, y, n_folds=4,
        )
        assert result.best_params["alpha"] in (0.01, 1.0, 100.0)
        assert len(result.table) == 3
        assert result.best.mean_f1 == max(
            r.mean_f1 for _, r in result.table
        )

    def test_multi_parameter_grid(self):
        X, y = topic_data()
        result = grid_search(
            MultinomialNaiveBayes,
            {"alpha": [0.5, 2.0]},
            X, y, n_folds=3,
        )
        assert {"alpha"} == set(result.best_params)

    def test_empty_grid_rejected(self):
        X, y = topic_data()
        with pytest.raises(ValueError):
            grid_search(MultinomialNaiveBayes, {}, X, y)
