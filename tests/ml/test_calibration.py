"""Calibration tests: Brier, reliability bins, Platt scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.calibration import (
    PlattScaler,
    brier_score,
    expected_calibration_error,
    reliability_bins,
)


class TestBrier:
    def test_perfect_predictions(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_worst_predictions(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_uninformed_half(self):
        assert brier_score([1, 0], [0.5, 0.5]) == 0.25

    def test_misaligned(self):
        with pytest.raises(ValueError):
            brier_score([1], [0.5, 0.5])

    def test_empty(self):
        with pytest.raises(ValueError):
            brier_score([], [])


class TestReliabilityBins:
    def test_well_calibrated_bins_match(self):
        rng = np.random.default_rng(8)
        probs = rng.uniform(0, 1, 4000)
        y = (rng.uniform(0, 1, 4000) < probs).astype(int)
        for bin_ in reliability_bins(y, probs, n_bins=5):
            assert abs(bin_.mean_predicted - bin_.observed_rate) < 0.08

    def test_counts_sum_to_n(self):
        probs = [0.1, 0.2, 0.8, 0.9]
        bins = reliability_bins([0, 0, 1, 1], probs, n_bins=4)
        assert sum(b.count for b in bins) == 4

    def test_empty_bins_omitted(self):
        bins = reliability_bins([1, 1], [0.95, 0.99], n_bins=10)
        assert len(bins) == 1

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_bins([1], [0.5], n_bins=0)


class TestEce:
    def test_perfectly_calibrated_near_zero(self):
        rng = np.random.default_rng(9)
        probs = rng.uniform(0, 1, 5000)
        y = (rng.uniform(0, 1, 5000) < probs).astype(int)
        assert expected_calibration_error(y, probs) < 0.05

    def test_overconfident_scores_high(self):
        # Claims certainty but is right only 60% of the time.
        y = [1] * 6 + [0] * 4
        probs = [0.99] * 10
        assert expected_calibration_error(y, probs) > 0.3


class TestPlattScaler:
    def _overconfident_data(self, n=400, seed=10):
        """True P(y=1|score) is milder than the overconfident score."""
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.01, 0.99, n)
        # Overconfident reported score: sharpen the true probability.
        true_p = 0.3 + 0.4 * raw
        y = (rng.uniform(0, 1, n) < true_p).astype(int)
        return raw, y

    def test_calibration_reduces_brier(self):
        raw, y = self._overconfident_data()
        scaler = PlattScaler()
        calibrated = scaler.fit_transform(raw, y)
        assert brier_score(y, calibrated) < brier_score(y, raw)

    def test_calibration_reduces_ece(self):
        raw, y = self._overconfident_data()
        calibrated = PlattScaler().fit_transform(raw, y)
        assert expected_calibration_error(y, calibrated) < (
            expected_calibration_error(y, raw)
        )

    def test_transform_is_monotone(self):
        raw, y = self._overconfident_data()
        scaler = PlattScaler().fit(raw, y)
        grid = np.linspace(0.01, 0.99, 50)
        out = scaler.transform(grid)
        assert np.all(np.diff(out) >= -1e-12) or np.all(
            np.diff(out) <= 1e-12
        )

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.2, 0.8], [1, 1])

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            PlattScaler().transform([0.5])

    def test_outputs_are_probabilities(self):
        raw, y = self._overconfident_data()
        calibrated = PlattScaler().fit_transform(raw, y)
        assert np.all((calibrated >= 0) & (calibrated <= 1))


@given(st.lists(
    st.tuples(st.integers(0, 1), st.floats(0.01, 0.99)),
    min_size=1, max_size=100,
))
def test_brier_bounded(pairs):
    y = [a for a, _ in pairs]
    p = [b for _, b in pairs]
    assert 0.0 <= brier_score(y, p) <= 1.0
