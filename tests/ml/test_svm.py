"""Linear SVM (Pegasos) tests."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.svm import LinearSvm


def separable(n_per_class=40, seed=5):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=[2.0, 2.0, 0.0], scale=0.4,
                     size=(n_per_class, 3))
    neg = rng.normal(loc=[-2.0, -2.0, 0.0], scale=0.4,
                     size=(n_per_class, 3))
    X = sparse.csr_matrix(np.vstack([pos, neg]))
    y = np.array([1] * n_per_class + [0] * n_per_class)
    return X, y


class TestTraining:
    def test_separable_data_high_accuracy(self):
        X, y = separable()
        model = LinearSvm(epochs=10).fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy >= 0.95

    def test_deterministic_given_seed(self):
        X, y = separable()
        a = LinearSvm(seed=3).fit(X, y)
        b = LinearSvm(seed=3).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)

    def test_different_seed_differs(self):
        X, y = separable()
        a = LinearSvm(seed=3).fit(X, y)
        b = LinearSvm(seed=4).fit(X, y)
        assert not np.allclose(a.weights_, b.weights_)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSvm(lam=0)
        with pytest.raises(ValueError):
            LinearSvm(epochs=0)

    def test_predict_before_fit_raises(self):
        X, _ = separable()
        with pytest.raises(RuntimeError):
            LinearSvm().predict(X)


class TestImbalance:
    def test_class_balancing_recovers_minority(self):
        rng = np.random.default_rng(11)
        pos = rng.normal(loc=[1.5, 1.5], scale=0.5, size=(8, 2))
        neg = rng.normal(loc=[-1.5, -1.5], scale=0.5, size=(200, 2))
        X = sparse.csr_matrix(np.vstack([pos, neg]))
        y = np.array([1] * 8 + [0] * 200)
        balanced = LinearSvm(epochs=20, balance_classes=True).fit(X, y)
        recall = (balanced.predict(X)[:8] == 1).mean()
        assert recall >= 0.75


class TestScores:
    def test_decision_function_sign_matches_predict(self):
        X, y = separable()
        model = LinearSvm().fit(X, y)
        margins = model.decision_function(X)
        assert np.array_equal(
            (margins >= 0).astype(int), model.predict(X)
        )

    def test_predict_proba_shape_and_range(self):
        X, y = separable()
        model = LinearSvm().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_proba_monotone_in_margin(self):
        X, y = separable()
        model = LinearSvm().fit(X, y)
        margins = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(margins)
        assert np.all(np.diff(proba[order]) >= -1e-12)
