"""Voting-ensemble tests."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.ensemble import VotingEnsemble
from repro.ml.naive_bayes import MultinomialNaiveBayes


def topic_data(seed=3, n=120):
    rng = np.random.default_rng(seed)

    def draw(kind, count):
        probs = (
            [0.3, 0.3, 0.2, 0.08, 0.07, 0.05]
            if kind else [0.05, 0.07, 0.08, 0.2, 0.3, 0.3]
        )
        return rng.multinomial(20, probs, size=count).astype(float)

    X = sparse.csr_matrix(np.vstack([draw(1, n // 2), draw(0, n // 2)]))
    y = np.array([1] * (n // 2) + [0] * (n // 2))
    return X, y


class TestVotingEnsemble:
    def test_default_members_separate(self):
        X, y = topic_data()
        ensemble = VotingEnsemble().fit(X, y)
        assert (ensemble.predict(X) == y).mean() >= 0.9

    def test_probabilities_valid(self):
        X, y = topic_data()
        proba = VotingEnsemble().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_single_member_matches_that_member(self):
        X, y = topic_data()
        ensemble = VotingEnsemble([MultinomialNaiveBayes]).fit(X, y)
        solo = MultinomialNaiveBayes().fit(X, y)
        assert np.allclose(
            ensemble.predict_proba(X), solo.predict_proba(X)
        )

    def test_weights_shift_average(self):
        X, y = topic_data()
        heavy_first = VotingEnsemble(
            [MultinomialNaiveBayes, MultinomialNaiveBayes],
            weights=[10.0, 1.0],
        ).fit(X, y)
        # Identical members -> same output regardless of weights.
        even = VotingEnsemble(
            [MultinomialNaiveBayes, MultinomialNaiveBayes],
        ).fit(X, y)
        assert np.allclose(
            heavy_first.predict_proba(X), even.predict_proba(X)
        )

    def test_sample_weight_forwarded(self):
        X, y = topic_data()
        weights = np.where(y == 1, 5.0, 1.0)
        weighted = VotingEnsemble([MultinomialNaiveBayes]).fit(
            X, y, sample_weight=weights
        )
        plain = VotingEnsemble([MultinomialNaiveBayes]).fit(X, y)
        assert weighted.predict_proba(X)[:, 1].mean() > (
            plain.predict_proba(X)[:, 1].mean()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            VotingEnsemble([])
        with pytest.raises(ValueError):
            VotingEnsemble([MultinomialNaiveBayes], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            VotingEnsemble([MultinomialNaiveBayes], weights=[-1.0])

    def test_predict_before_fit(self):
        X, _ = topic_data()
        with pytest.raises(RuntimeError):
            VotingEnsemble().predict(X)

    def test_usable_in_trigger_classifier(self):
        """The ensemble drops into the denoising pipeline."""
        from repro.core.classifier import TriggerEventClassifier
        from repro.core.snippets import Snippet
        from repro.core.training import AnnotatedSnippet
        from repro.text.annotator import Annotator

        annotator = Annotator()

        def item(text, key):
            return AnnotatedSnippet(
                snippet=Snippet(doc_id=key, index=0, sentences=(text,)),
                annotated=annotator.annotate(text),
            )

        positives = [
            item(f"{a} agreed to acquire {b} for $5 billion.", f"p{i}")
            for i, (a, b) in enumerate(
                [("Acme Inc", "Globex Corp"),
                 ("Initech Ltd", "Hooli Systems")] * 5
            )
        ]
        negatives = [
            item("a quiet afternoon of gardening and weather.", f"n{i}")
            for i in range(10)
        ]
        clf = TriggerEventClassifier(
            "ma", classifier_factory=VotingEnsemble
        )
        clf.fit(positives, negatives)
        assert clf.score(positives[:2]).min() > 0.5
