"""Property-based invariants across the classifier implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.ml.logreg import LogisticRegression
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSvm


@st.composite
def count_datasets(draw):
    """Small two-class count matrices with both classes present."""
    n_features = draw(st.integers(2, 6))
    n_pos = draw(st.integers(2, 8))
    n_neg = draw(st.integers(2, 8))
    rows = []
    for _ in range(n_pos + n_neg):
        rows.append([
            draw(st.integers(0, 5)) for _ in range(n_features)
        ])
    X = np.array(rows, dtype=float)
    # Guarantee at least one non-zero per row so models have evidence.
    X[X.sum(axis=1) == 0, 0] = 1.0
    y = np.array([1] * n_pos + [0] * n_neg)
    return sparse.csr_matrix(X), y


@settings(max_examples=25, deadline=None)
@given(count_datasets())
def test_nb_probabilities_valid(data):
    X, y = data
    for model_cls in (MultinomialNaiveBayes, BernoulliNaiveBayes):
        model = model_cls().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)


@settings(max_examples=25, deadline=None)
@given(count_datasets())
def test_nb_predictions_match_argmax_of_proba(data):
    X, y = data
    model = MultinomialNaiveBayes().fit(X, y)
    proba = model.predict_proba(X)
    assert np.array_equal(model.predict(X), proba.argmax(axis=1))


@settings(max_examples=25, deadline=None)
@given(count_datasets())
def test_multinomial_nb_row_permutation_invariant(data):
    """Training-set row order must not change the fitted model."""
    X, y = data
    rng = np.random.default_rng(0)
    perm = rng.permutation(X.shape[0])
    a = MultinomialNaiveBayes().fit(X, y)
    b = MultinomialNaiveBayes().fit(X[perm], y[perm])
    assert np.allclose(a.feature_log_prob_, b.feature_log_prob_)
    assert np.allclose(a.class_log_prior_, b.class_log_prior_)


@settings(max_examples=25, deadline=None)
@given(count_datasets(), st.integers(2, 5))
def test_multinomial_nb_duplicating_data_is_invariant(data, k):
    """Replicating every sample k times leaves the model unchanged."""
    X, y = data
    X_rep = sparse.vstack([X] * k)
    y_rep = np.concatenate([y] * k)
    a = MultinomialNaiveBayes(alpha=1.0).fit(X, y)
    b = MultinomialNaiveBayes(alpha=1.0).fit(
        X, y, sample_weight=np.full(X.shape[0], float(k))
    )
    c = MultinomialNaiveBayes(alpha=1.0).fit(X_rep, y_rep)
    # Weighted fit == replicated fit (likelihoods and priors).
    assert np.allclose(b.feature_log_prob_, c.feature_log_prob_)
    assert np.allclose(b.class_log_prior_, c.class_log_prior_)
    # Priors also match the unreplicated fit (ratios unchanged).
    assert np.allclose(a.class_log_prior_, c.class_log_prior_)


@settings(max_examples=15, deadline=None)
@given(count_datasets())
def test_logreg_decision_matches_probability_half(data):
    X, y = data
    model = LogisticRegression(max_iter=50).fit(X, y)
    margins = model.decision_function(X)
    proba = model.predict_proba(X)[:, 1]
    assert np.array_equal(margins >= 0, proba >= 0.5)


@settings(max_examples=15, deadline=None)
@given(count_datasets())
def test_svm_prediction_consistent_with_margin(data):
    X, y = data
    model = LinearSvm(epochs=2).fit(X, y)
    margins = model.decision_function(X)
    assert np.array_equal(
        model.predict(X), (margins >= 0).astype(int)
    )


@settings(max_examples=15, deadline=None)
@given(count_datasets())
def test_models_are_deterministic(data):
    X, y = data
    for factory in (
        MultinomialNaiveBayes,
        BernoulliNaiveBayes,
        lambda: LinearSvm(epochs=2, seed=3),
        lambda: LogisticRegression(max_iter=30),
    ):
        a = factory().fit(X, y).predict_proba(X)
        b = factory().fit(X, y).predict_proba(X)
        assert np.allclose(a, b)
