"""Logistic regression + Lee-Liu weighted PU learning tests."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.logreg import LogisticRegression, fit_pu_weighted


def blobs(seed=7, n=60):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=[1.5, 1.0], scale=0.5, size=(n, 2))
    neg = rng.normal(loc=[-1.5, -1.0], scale=0.5, size=(n, 2))
    X = sparse.csr_matrix(np.vstack([pos, neg]))
    y = np.array([1] * n + [0] * n)
    return X, y


class TestTraining:
    def test_separable_accuracy(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.95

    def test_converges_before_max_iter_on_easy_data(self):
        X, y = blobs()
        model = LogisticRegression(max_iter=500, tol=1e-5).fit(X, y)
        assert model.n_iter_ < 500

    def test_probabilities_calibrated_direction(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)[:, 1]
        assert proba[y == 1].mean() > proba[y == 0].mean()

    def test_l2_shrinks_weights(self):
        X, y = blobs()
        loose = LogisticRegression(l2=1e-6).fit(X, y)
        tight = LogisticRegression(l2=1.0).fit(X, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(
            loose.weights_
        )

    def test_sample_weights_shift_boundary(self):
        X, y = blobs()
        # Weighting positives heavily should lift P(pos) everywhere.
        weights = np.where(y == 1, 10.0, 1.0)
        heavy = LogisticRegression().fit(X, y, sample_weight=weights)
        plain = LogisticRegression().fit(X, y)
        assert heavy.predict_proba(X)[:, 1].mean() > (
            plain.predict_proba(X)[:, 1].mean()
        )

    def test_zero_weights_rejected(self):
        X, y = blobs()
        with pytest.raises(ValueError):
            LogisticRegression().fit(
                X, y, sample_weight=np.zeros(X.shape[0])
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_predict_before_fit(self):
        X, _ = blobs()
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(X)


class TestPuLearning:
    def test_recovers_positives_hidden_in_unlabeled(self):
        rng = np.random.default_rng(3)
        pos = rng.normal(loc=[1.5, 1.0], scale=0.5, size=(40, 2))
        hidden_pos = rng.normal(loc=[1.5, 1.0], scale=0.5, size=(20, 2))
        neg = rng.normal(loc=[-1.5, -1.0], scale=0.5, size=(120, 2))
        unlabeled = np.vstack([hidden_pos, neg])
        model = fit_pu_weighted(
            sparse.csr_matrix(pos),
            sparse.csr_matrix(unlabeled),
            unlabeled_weight=0.4,
        )
        hidden_predictions = model.predict(sparse.csr_matrix(hidden_pos))
        assert hidden_predictions.mean() >= 0.8
        neg_predictions = model.predict(sparse.csr_matrix(neg))
        assert neg_predictions.mean() <= 0.2

    def test_invalid_weights_rejected(self):
        X = sparse.csr_matrix(np.eye(2))
        with pytest.raises(ValueError):
            fit_pu_weighted(X, X, positive_weight=0)
        with pytest.raises(ValueError):
            fit_pu_weighted(X, X, unlabeled_weight=-1)
