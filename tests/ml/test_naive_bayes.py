"""Naive Bayes tests: both event models, weights, smoothing."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes


def toy_data():
    """Separable two-class count data: feature 0/1 positive, 2/3 negative."""
    X = sparse.csr_matrix(np.array([
        [3, 1, 0, 0],
        [2, 2, 0, 0],
        [1, 3, 0, 1],
        [0, 0, 2, 2],
        [0, 1, 3, 1],
        [0, 0, 1, 3],
    ], dtype=float))
    y = np.array([1, 1, 1, 0, 0, 0])
    return X, y


@pytest.mark.parametrize("model_cls", [
    MultinomialNaiveBayes, BernoulliNaiveBayes,
])
class TestCommonBehaviour:
    def test_fits_and_separates(self, model_cls):
        X, y = toy_data()
        model = model_cls().fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_predict_proba_rows_sum_to_one(self, model_cls):
        X, y = toy_data()
        model = model_cls().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (6, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_before_fit_raises(self, model_cls):
        X, _ = toy_data()
        with pytest.raises(RuntimeError):
            model_cls().predict(X)

    def test_label_validation(self, model_cls):
        X, _ = toy_data()
        with pytest.raises(ValueError):
            model_cls().fit(X, np.array([0, 1, 2, 0, 1, 2]))

    def test_shape_mismatch_rejected(self, model_cls):
        X, _ = toy_data()
        with pytest.raises(ValueError):
            model_cls().fit(X, np.array([0, 1]))

    def test_invalid_alpha(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(alpha=0)

    def test_unseen_features_do_not_crash(self, model_cls):
        X, y = toy_data()
        model = model_cls().fit(X, y)
        X_new = sparse.csr_matrix(np.array([[0, 0, 0, 0]], dtype=float))
        assert model.predict(X_new).shape == (1,)

    def test_sample_weight_shifts_prior(self, model_cls):
        X, y = toy_data()
        heavy_pos = model_cls().fit(
            X, y, sample_weight=np.array([10, 10, 10, 1, 1, 1.0])
        )
        prior_ratio = (
            heavy_pos.class_log_prior_[1] - heavy_pos.class_log_prior_[0]
        )
        balanced = model_cls().fit(X, y)
        balanced_ratio = (
            balanced.class_log_prior_[1] - balanced.class_log_prior_[0]
        )
        assert prior_ratio > balanced_ratio


class TestMultinomialSpecifics:
    def test_matches_hand_computed_posterior(self):
        # One feature, pure classes: P(f|1)=(3+1)/(3+2)=0.8 with alpha=1
        # over 2 features.
        X = sparse.csr_matrix(np.array([[3.0, 0.0], [0.0, 3.0]]))
        y = np.array([1, 0])
        model = MultinomialNaiveBayes(alpha=1.0).fit(X, y)
        expected_p_f0_given_1 = (3 + 1) / (3 + 2)
        assert np.exp(
            model.feature_log_prob_[1, 0]
        ) == pytest.approx(expected_p_f0_given_1)

    def test_count_magnitude_matters(self):
        X = sparse.csr_matrix(np.array([[5.0, 1.0], [1.0, 5.0]]))
        y = np.array([1, 0])
        model = MultinomialNaiveBayes().fit(X, y)
        strong = sparse.csr_matrix(np.array([[10.0, 0.0]]))
        weak = sparse.csr_matrix(np.array([[1.0, 0.0]]))
        assert (
            model.predict_proba(strong)[0, 1]
            > model.predict_proba(weak)[0, 1]
        )

    def test_higher_alpha_flattens_likelihoods(self):
        X, y = toy_data()
        sharp = MultinomialNaiveBayes(alpha=0.1).fit(X, y)
        flat = MultinomialNaiveBayes(alpha=100.0).fit(X, y)
        spread_sharp = np.ptp(sharp.feature_log_prob_)
        spread_flat = np.ptp(flat.feature_log_prob_)
        assert spread_flat < spread_sharp


class TestBernoulliSpecifics:
    def test_counts_are_binarized(self):
        X_counts = sparse.csr_matrix(np.array([[9.0, 0.0], [0.0, 9.0]]))
        X_binary = sparse.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        y = np.array([1, 0])
        a = BernoulliNaiveBayes().fit(X_counts, y)
        b = BernoulliNaiveBayes().fit(X_binary, y)
        assert np.allclose(a._log_p, b._log_p)

    def test_absence_is_evidence(self):
        # Feature 1 present in every negative: its absence should push
        # toward the positive class.
        X = sparse.csr_matrix(np.array([
            [1.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.0, 1.0],
        ]))
        y = np.array([1, 1, 0, 0, 0])
        model = BernoulliNaiveBayes().fit(X, y)
        missing_both = sparse.csr_matrix(np.array([[1.0, 0.0]]))
        assert model.predict(missing_both)[0] == 1
