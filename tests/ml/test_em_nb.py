"""EM naive Bayes (Nigam et al.) tests."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.ml.em_nb import EmNaiveBayes


def text_like_data(seed=9):
    """Counts over 6 'words': 0-2 positive-topic, 3-5 negative-topic."""
    rng = np.random.default_rng(seed)

    def draw(topic, n):
        probs = (
            [0.28, 0.28, 0.28, 0.06, 0.05, 0.05]
            if topic == 1
            else [0.06, 0.05, 0.05, 0.28, 0.28, 0.28]
        )
        return rng.multinomial(20, probs, size=n).astype(float)

    X_labeled = sparse.csr_matrix(np.vstack([draw(1, 5), draw(0, 5)]))
    y_labeled = np.array([1] * 5 + [0] * 5)
    X_unlabeled = sparse.csr_matrix(np.vstack([draw(1, 60), draw(0, 60)]))
    truth_unlabeled = np.array([1] * 60 + [0] * 60)
    X_test = sparse.csr_matrix(np.vstack([draw(1, 40), draw(0, 40)]))
    y_test = np.array([1] * 40 + [0] * 40)
    return X_labeled, y_labeled, X_unlabeled, truth_unlabeled, X_test, y_test


class TestEm:
    def test_without_unlabeled_matches_plain_nb(self):
        X_labeled, y_labeled, *_ = text_like_data()
        model = EmNaiveBayes().fit(X_labeled, y_labeled)
        assert model.n_iter_ == 0
        assert np.array_equal(model.predict(X_labeled), y_labeled)

    def test_unlabeled_data_does_not_hurt_clean_task(self):
        (X_labeled, y_labeled, X_unlabeled, _,
         X_test, y_test) = text_like_data()
        supervised = EmNaiveBayes().fit(X_labeled, y_labeled)
        semi = EmNaiveBayes().fit(X_labeled, y_labeled, X_unlabeled)
        acc_supervised = (supervised.predict(X_test) == y_test).mean()
        acc_semi = (semi.predict(X_test) == y_test).mean()
        assert acc_semi >= acc_supervised - 0.05

    def test_em_iterations_run_and_stop(self):
        (X_labeled, y_labeled, X_unlabeled, *_ ) = text_like_data()
        model = EmNaiveBayes(max_iter=8).fit(
            X_labeled, y_labeled, X_unlabeled
        )
        assert 1 <= model.n_iter_ <= 8

    def test_unlabeled_posteriors_match_truth(self):
        (X_labeled, y_labeled, X_unlabeled,
         truth, *_ ) = text_like_data()
        model = EmNaiveBayes().fit(X_labeled, y_labeled, X_unlabeled)
        agreement = (model.predict(X_unlabeled) == truth).mean()
        assert agreement >= 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EmNaiveBayes(max_iter=0)
        with pytest.raises(ValueError):
            EmNaiveBayes(unlabeled_weight=0)

    def test_predict_before_fit(self):
        X = sparse.csr_matrix(np.eye(3))
        with pytest.raises(RuntimeError):
            EmNaiveBayes().predict(X)

    def test_empty_unlabeled_block(self):
        X_labeled, y_labeled, *_ = text_like_data()
        empty = sparse.csr_matrix((0, X_labeled.shape[1]))
        model = EmNaiveBayes().fit(X_labeled, y_labeled, empty)
        assert model.n_iter_ == 0
