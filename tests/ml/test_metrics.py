"""Metric tests: confusion, P/R/F1, AP, P@k, MRR."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    average_precision,
    confusion_matrix,
    mean_reciprocal_rank,
    precision_at_k,
    precision_recall_f1,
    reciprocal_rank,
)


class TestConfusion:
    def test_counts(self):
        cm = confusion_matrix([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (cm.tp, cm.fp, cm.fn, cm.tn) == (2, 1, 1, 1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1], [1, 0])

    def test_n(self):
        cm = confusion_matrix([1, 0], [0, 1])
        assert cm.n == 2


class TestPrf:
    def test_paper_f1_definition(self):
        # F1 = harmonic mean of P and R (section 5.1).
        result = precision_recall_f1([1, 1, 1, 0, 0], [1, 1, 0, 1, 0])
        assert result.precision == pytest.approx(2 / 3)
        assert result.recall == pytest.approx(2 / 3)
        expected_f1 = 2 * (2 / 3) * (2 / 3) / (4 / 3)
        assert result.f1 == pytest.approx(expected_f1)

    def test_perfect(self):
        result = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert result == type(result)(1.0, 1.0, 1.0)

    def test_no_predictions_zero_precision(self):
        result = precision_recall_f1([1, 1], [0, 0])
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_table1_values_reproducible_from_counts(self):
        # Sanity: the paper's M&A row (0.744, 0.806) gives F1 0.773.
        p, r = 0.744, 0.806
        f1 = 2 * p * r / (p + r)
        assert f1 == pytest.approx(0.773, abs=0.002)

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 1, 0, 0], [0.9, 0.8, 0.2, 0.1]) == 1.0

    def test_worst_ranking(self):
        ap = average_precision([1, 0, 0], [0.1, 0.9, 0.8])
        assert ap == pytest.approx(1 / 3)

    def test_no_positives(self):
        assert average_precision([0, 0], [0.5, 0.4]) == 0.0

    def test_known_value(self):
        # Positives at ranks 1 and 3: (1/1 + 2/3) / 2.
        ap = average_precision([1, 0, 1], [0.9, 0.5, 0.4])
        assert ap == pytest.approx((1 + 2 / 3) / 2)


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.1], 2) == 0.5

    def test_k_beyond_length(self):
        assert precision_at_k([1, 0], [0.9, 0.1], 10) == 0.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [0.5], 0)


class TestMrr:
    def test_reciprocal_rank_first(self):
        assert reciprocal_rank([True, False]) == 1.0

    def test_reciprocal_rank_third(self):
        assert reciprocal_rank([False, False, True]) == pytest.approx(
            1 / 3
        )

    def test_reciprocal_rank_none(self):
        assert reciprocal_rank([False, False]) == 0.0

    def test_mean_over_queries(self):
        value = mean_reciprocal_rank([[True], [False, True]])
        assert value == pytest.approx((1.0 + 0.5) / 2)

    def test_empty(self):
        assert mean_reciprocal_rank([]) == 0.0


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=60))
def test_prf_bounds(pairs):
    y_true = [a for a, _ in pairs]
    y_pred = [b for _, b in pairs]
    result = precision_recall_f1(y_true, y_pred)
    for value in (result.precision, result.recall, result.f1):
        assert 0.0 <= value <= 1.0
    low, high = sorted([result.precision, result.recall])
    assert low - 1e-9 <= result.f1 <= high + 1e-9


@given(st.lists(st.tuples(st.integers(0, 1),
                          st.floats(0, 1, allow_nan=False)),
                min_size=1, max_size=60))
def test_average_precision_bounds(pairs):
    y_true = [a for a, _ in pairs]
    scores = [b for _, b in pairs]
    assert 0.0 <= average_precision(y_true, scores) <= 1.0
