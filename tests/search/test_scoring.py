"""Ranking-function tests: TF-IDF and BM25 behaviour."""

from __future__ import annotations

import pytest

from repro.search.index import InvertedIndex
from repro.search.scoring import Bm25, TfIdf


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_document("short", "acme deal")
    idx.add_document("long", "acme " + "filler " * 50 + "deal")
    idx.add_document("rare", "unique zebra phrase here")
    idx.add_document("common1", "deal deal deal")
    idx.add_document("common2", "deal talk")
    return idx


class TestBm25:
    def test_zero_for_unknown_term(self, index):
        assert Bm25().score_term(index, "zork", "short", 0) == 0.0

    def test_zero_for_zero_tf(self, index):
        assert Bm25().score_term(index, "acme", "short", 0) == 0.0

    def test_rare_term_outscores_common(self, index):
        bm25 = Bm25()
        rare = bm25.score_term(index, "zebra", "rare", 1)
        common = bm25.score_term(index, "deal", "common2", 1)
        assert rare > common

    def test_length_normalization(self, index):
        bm25 = Bm25()
        short = bm25.score_term(index, "acme", "short", 1)
        long = bm25.score_term(index, "acme", "long", 1)
        assert short > long

    def test_tf_saturation(self, index):
        bm25 = Bm25()
        one = bm25.score_term(index, "deal", "common1", 1)
        three = bm25.score_term(index, "deal", "common1", 3)
        assert three > one
        assert three < 3 * one  # saturating, not linear

    def test_b_zero_disables_length_norm(self, index):
        bm25 = Bm25(b=0.0)
        short = bm25.score_term(index, "acme", "short", 1)
        long = bm25.score_term(index, "acme", "long", 1)
        assert short == pytest.approx(long)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Bm25(k1=-1)
        with pytest.raises(ValueError):
            Bm25(b=1.5)


class TestTfIdf:
    def test_zero_for_unknown_term(self, index):
        assert TfIdf().score_term(index, "zork", "short", 0) == 0.0

    def test_rare_term_outscores_common(self, index):
        tfidf = TfIdf()
        rare = tfidf.score_term(index, "zebra", "rare", 1)
        common = tfidf.score_term(index, "deal", "common2", 1)
        assert rare > common

    def test_sublinear_tf(self, index):
        tfidf = TfIdf()
        one = tfidf.score_term(index, "deal", "common1", 1)
        three = tfidf.score_term(index, "deal", "common1", 3)
        assert one < three < 3 * one

    def test_all_scores_positive(self, index):
        tfidf = TfIdf()
        assert tfidf.score_term(index, "deal", "common1", 2) > 0
