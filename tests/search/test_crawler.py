"""Focused-crawler tests: budget, determinism, prioritization."""

from __future__ import annotations

import pytest

from repro.corpus.web import FRONT_PAGE_URL
from repro.search.crawler import (
    CrawlResult,
    FocusedCrawler,
    business_relevance,
)


class TestCrawl:
    def test_respects_page_budget(self, small_web):
        crawler = FocusedCrawler(small_web, max_pages=25)
        result = crawler.crawl()
        assert len(result.pages) == 25

    def test_full_crawl_reaches_all_documents(self, small_web):
        crawler = FocusedCrawler(small_web, max_pages=10_000)
        result = crawler.crawl()
        fetched = {page.url for page in result.pages}
        for document in small_web.documents:
            assert document.url in fetched

    def test_no_page_fetched_twice(self, small_web):
        crawler = FocusedCrawler(small_web, max_pages=10_000)
        result = crawler.crawl()
        assert len(result.fetch_order) == len(set(result.fetch_order))

    def test_deterministic(self, small_web):
        a = FocusedCrawler(small_web, max_pages=100).crawl()
        b = FocusedCrawler(small_web, max_pages=100).crawl()
        assert a.fetch_order == b.fetch_order

    def test_depth_limit(self, small_web):
        # Depth 0 = only the seed.
        crawler = FocusedCrawler(small_web, max_pages=100, max_depth=0)
        result = crawler.crawl()
        assert result.fetch_order == [FRONT_PAGE_URL]

    def test_dead_seed_is_skipped(self, small_web):
        crawler = FocusedCrawler(small_web, max_pages=10)
        result = crawler.crawl(
            seeds=["http://dead.example.com/", FRONT_PAGE_URL]
        )
        assert result.skipped == 1
        assert result.pages

    def test_documents_property(self, small_web):
        result = FocusedCrawler(small_web, max_pages=200).crawl()
        assert all(doc is not None for doc in result.documents)

    def test_invalid_budget_rejected(self, small_web):
        with pytest.raises(ValueError):
            FocusedCrawler(small_web, max_pages=0)


class TestFocus:
    def test_business_pages_crawled_earlier_on_average(self, small_web):
        crawler = FocusedCrawler(small_web, max_pages=10_000)
        result = crawler.crawl()
        positions_business = []
        positions_other = []
        for position, page in enumerate(result.pages):
            if page.document is None:
                continue
            bucket = (
                positions_business
                if page.document.doc_type
                in ("ma_news", "cim_news", "rg_news")
                else positions_other
            )
            bucket.append(position)
        assert positions_business and positions_other
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(positions_business) < mean(positions_other)


class TestRelevanceScorer:
    def test_business_text_scores_higher(self, small_web):
        business = next(
            small_web.fetch(d.url)
            for d in small_web.documents
            if d.doc_type == "ma_news"
        )
        background = next(
            small_web.fetch(d.url)
            for d in small_web.documents
            if d.doc_type == "background"
        )
        assert business_relevance(business) > business_relevance(
            background
        )

    def test_empty_page_scores_zero(self):
        from repro.corpus.web import Page

        page = Page(url="u", title="", text="", links=())
        assert business_relevance(page) == 0.0
