"""Flat-buffer postings: lazy materialization and classic-index parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.index import FlatPostings, InvertedIndex

DOCS = [
    ("d0", "the quick brown fox jumps over the lazy dog", "t0"),
    ("d1", "the dog barks at the quick fox", "t1"),
    ("d2", "revenue rose sharply this quarter", "t2"),
    ("d3", "", "t3"),
    ("d4", "the quarter closed with revenue up", "t4"),
]


def build_flat(docs=DOCS):
    """Flat postings over ``docs`` with vocab in first-appearance order."""
    vocab_ids: dict[str, int] = {}
    streams = []
    doc_ptr = [0]
    for _, text, _ in docs:
        ids = [
            vocab_ids.setdefault(term, len(vocab_ids))
            for term in text.split()
        ]
        streams.extend(ids)
        doc_ptr.append(len(streams))
    return FlatPostings(
        vocab=list(vocab_ids),
        doc_keys=[key for key, _, _ in docs],
        titles=[title for _, _, title in docs],
        token_terms=np.asarray(streams, dtype=np.int32),
        doc_ptr=np.asarray(doc_ptr, dtype=np.int64),
    )


def classic(docs=DOCS):
    index = InvertedIndex()
    for key, text, title in docs:
        index.add_document(key, text, title, terms=text.split())
    return index


def adopted(docs=DOCS):
    index = InvertedIndex()
    index.adopt_flat(build_flat(docs))
    return index


def snapshot(index, terms):
    return {
        term: {
            key: list(p.positions)
            for key, p in index.postings(term).items()
        }
        for term in terms
    }


ALL_TERMS = sorted({t for _, text, _ in DOCS for t in text.split()})


class TestParity:
    def test_postings_match_classic_build(self):
        assert snapshot(adopted(), ALL_TERMS) == snapshot(
            classic(), ALL_TERMS
        )

    def test_document_frequency_before_materialization(self):
        index = adopted()
        reference = classic()
        for term in ALL_TERMS:
            assert index.document_frequency(
                term
            ) == reference.document_frequency(term)
        # df answers came from the flat arrays, not materialization.
        assert index._flat_pending == set(build_flat().vocab)

    def test_lengths_titles_and_keys(self):
        index, reference = adopted(), classic()
        assert index.doc_keys() == reference.doc_keys()
        for key, _, _ in DOCS:
            assert index.doc_length(key) == reference.doc_length(key)
            assert index.title(key) == reference.title(key)
        assert index.n_docs == reference.n_docs
        assert index.total_terms == reference.total_terms

    def test_phrase_docs(self):
        assert adopted().phrase_docs(["quick", "fox"]) == classic(
        ).phrase_docs(["quick", "fox"])


class TestLaziness:
    def test_postings_access_materializes_one_term(self):
        index = adopted()
        pending_before = len(index._flat_pending)
        index.postings("the")
        assert len(index._flat_pending) == pending_before - 1
        assert "the" in index._postings

    def test_unknown_term_is_empty(self):
        assert adopted().postings("zebra") == {}


class TestMutation:
    def test_adopt_requires_empty_index(self):
        index = classic()
        with pytest.raises(ValueError):
            index.adopt_flat(build_flat())

    def test_remove_flat_document(self):
        index = adopted()
        index.remove_document("d1")
        reference = classic()
        reference.remove_document("d1")
        assert snapshot(index, ALL_TERMS) == snapshot(
            reference, ALL_TERMS
        )
        assert "d1" not in index

    def test_removed_doc_never_resurrects(self):
        index = adopted()
        index.remove_document("d0")
        # Materialize *after* the removal: d0 must not reappear.
        for term in ALL_TERMS:
            assert "d0" not in index.postings(term)

    def test_add_document_after_adoption_appends_in_order(self):
        index = adopted()
        index.add_document("d5", "", terms=["the", "new", "dog"])
        reference = classic()
        reference.add_document("d5", "", terms=["the", "new", "dog"])
        terms = ALL_TERMS + ["new"]
        assert snapshot(index, terms) == snapshot(reference, terms)
        # Ordering matters: existing flat docs come first in the dict.
        assert list(index.postings("the")) == list(
            reference.postings("the")
        )

    def test_replace_flat_document(self):
        index = adopted()
        index.add_document("d2", "", terms=["fresh", "terms"])
        reference = classic()
        reference.add_document("d2", "", terms=["fresh", "terms"])
        terms = ALL_TERMS + ["fresh", "terms"]
        assert snapshot(index, terms) == snapshot(reference, terms)


class TestCloneAndPersistence:
    def test_clone_shares_flat_backing(self):
        index = adopted()
        twin = index.clone()
        assert twin._flat is index._flat
        twin.remove_document("d0")
        # The original is untouched.
        assert "d0" in index
        assert "d0" in index.postings("the")

    def test_save_load_roundtrip(self, tmp_path):
        index = adopted()
        path = tmp_path / "index.json"
        index.save_json(path)
        loaded = InvertedIndex.load_json(path)
        assert snapshot(loaded, ALL_TERMS) == snapshot(
            classic(), ALL_TERMS
        )
