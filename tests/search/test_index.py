"""Inverted index tests: postings, stats, phrase intersection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.index import InvertedIndex


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_document("d1", "acme acquired globex", title="deal")
    idx.add_document("d2", "globex posted revenue growth")
    idx.add_document("d3", "acme named a new ceo and a new cto")
    return idx


class TestPostings:
    def test_term_lookup(self, index):
        assert set(index.postings("acme")) == {"d1", "d3"}

    def test_case_insensitive(self, index):
        assert set(index.postings("ACME")) == {"d1", "d3"}

    def test_unknown_term_empty(self, index):
        assert index.postings("zork") == {}

    def test_term_frequency(self, index):
        assert index.postings("new")["d3"].term_frequency == 2

    def test_positions_recorded(self, index):
        posting = index.postings("acquired")["d1"]
        assert list(posting.positions) == [1]


class TestStats:
    def test_n_docs(self, index):
        assert index.n_docs == 3

    def test_document_frequency(self, index):
        assert index.document_frequency("globex") == 2
        assert index.document_frequency("zork") == 0

    def test_doc_length(self, index):
        assert index.doc_length("d1") == 3
        assert index.doc_length("missing") == 0

    def test_average_doc_length(self, index):
        total = sum(index.doc_length(k) for k in ("d1", "d2", "d3"))
        assert index.average_doc_length == pytest.approx(total / 3)

    def test_title(self, index):
        assert index.title("d1") == "deal"
        assert index.title("d2") == ""

    def test_empty_index_stats(self):
        idx = InvertedIndex()
        assert idx.n_docs == 0
        assert idx.average_doc_length == 0.0


class TestPhrases:
    def test_phrase_match(self, index):
        assert index.phrase_docs(["new", "ceo"]) == {"d3": 1}

    def test_phrase_requires_adjacency(self, index):
        assert index.phrase_docs(["acme", "globex"]) == {}

    def test_single_word_phrase(self, index):
        assert index.phrase_docs(["globex"]) == {"d1": 1, "d2": 1}

    def test_empty_phrase(self, index):
        assert index.phrase_docs([]) == {}

    def test_phrase_counts_multiple_occurrences(self):
        idx = InvertedIndex()
        idx.add_document("d", "new ceo and another new ceo arrived")
        assert idx.phrase_docs(["new", "ceo"]) == {"d": 2}

    def test_three_word_phrase(self):
        idx = InvertedIndex()
        idx.add_document("d", "they agreed to acquire the firm")
        assert idx.phrase_docs(["agreed", "to", "acquire"]) == {"d": 1}


class TestMutation:
    def test_re_add_replaces(self, index):
        index.add_document("d1", "completely different now")
        assert "d1" not in index.postings("acme")
        assert "d1" in index.postings("different")

    def test_remove_document(self, index):
        index.remove_document("d2")
        assert index.n_docs == 2
        assert "d2" not in index.postings("revenue")

    def test_remove_missing_is_noop(self, index):
        index.remove_document("missing")
        assert index.n_docs == 3

    def test_remove_cleans_empty_terms(self, index):
        index.remove_document("d2")
        assert index.document_frequency("revenue") == 0


@given(st.lists(
    st.text(alphabet="abcde", min_size=1, max_size=4),
    min_size=1, max_size=30,
))
def test_phrase_docs_subset_of_single_term_postings(words):
    idx = InvertedIndex()
    idx.add_document("d", " ".join(words))
    for length in (2, 3):
        for start in range(len(words) - length + 1):
            phrase = words[start : start + length]
            hits = idx.phrase_docs(phrase)
            assert set(hits) <= set(idx.postings(phrase[0]))
            assert hits  # the phrase genuinely occurs


@given(st.lists(
    st.text(alphabet="abc", min_size=1, max_size=3),
    min_size=1, max_size=20,
))
def test_doc_length_equals_token_count(words):
    idx = InvertedIndex()
    idx.add_document("d", " ".join(words))
    assert idx.doc_length("d") == len(words)


class TestPersistence:
    def test_roundtrip_preserves_search_behaviour(self, index, tmp_path):
        path = tmp_path / "index.json"
        index.save_json(path)
        from repro.search.index import InvertedIndex as II

        loaded = II.load_json(path)
        assert loaded.n_docs == index.n_docs
        assert loaded.doc_length("d1") == index.doc_length("d1")
        assert loaded.title("d1") == index.title("d1")
        assert loaded.phrase_docs(["new", "ceo"]) == (
            index.phrase_docs(["new", "ceo"])
        )
        assert set(loaded.postings("acme")) == set(
            index.postings("acme")
        )

    def test_loaded_index_is_mutable(self, index, tmp_path):
        path = tmp_path / "index.json"
        index.save_json(path)
        from repro.search.index import InvertedIndex as II

        loaded = II.load_json(path)
        loaded.add_document("d4", "brand new content")
        assert loaded.n_docs == index.n_docs + 1
        loaded.remove_document("d1")
        assert "d1" not in loaded.postings("acme")
