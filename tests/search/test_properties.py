"""Property-based invariants for the search substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lexicon import OrientationLexicon
from repro.search.engine import SearchEngine

WORDS = ["acme", "globex", "deal", "merger", "ceo", "profit", "rain"]


@st.composite
def corpora(draw):
    n_docs = draw(st.integers(1, 8))
    documents = []
    for index in range(n_docs):
        words = draw(
            st.lists(st.sampled_from(WORDS), min_size=1, max_size=15)
        )
        documents.append((f"d{index}", " ".join(words)))
    return documents


@settings(max_examples=30, deadline=None)
@given(corpora(), st.sampled_from(WORDS))
def test_results_actually_contain_the_term(documents, term):
    engine = SearchEngine()
    texts = dict(documents)
    for doc_key, text in documents:
        engine.add_document(doc_key, text)
    for hit in engine.search(term, top_k=10):
        assert term in texts[hit.doc_key].split()


@settings(max_examples=30, deadline=None)
@given(corpora(), st.sampled_from(WORDS), st.integers(1, 5))
def test_top_k_is_a_prefix_of_larger_k(documents, term, k):
    engine = SearchEngine()
    for doc_key, text in documents:
        engine.add_document(doc_key, text)
    small = [h.doc_key for h in engine.search(term, top_k=k)]
    large = [h.doc_key for h in engine.search(term, top_k=k + 5)]
    assert large[: len(small)] == small


@settings(max_examples=30, deadline=None)
@given(corpora())
def test_phrase_results_subset_of_keyword_results(documents):
    engine = SearchEngine()
    for doc_key, text in documents:
        engine.add_document(doc_key, text)
    phrase_hits = {
        h.doc_key for h in engine.search('"acme deal"', top_k=50)
    }
    keyword_hits = {
        h.doc_key for h in engine.search("acme deal", top_k=50)
    }
    assert phrase_hits <= keyword_hits


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from(WORDS), min_size=0, max_size=20),
    st.lists(st.sampled_from(WORDS), min_size=0, max_size=20),
)
def test_lexicon_score_additive_over_concatenation(left, right):
    """With single-word phrases only, score(a + b) = score(a) + score(b)."""
    lexicon = OrientationLexicon(
        {"profit": 1.0, "deal": 0.5, "rain": -1.0}
    )
    a = " ".join(left)
    b = " ".join(right)
    joined = (a + " " + b).strip()
    assert lexicon.score(joined) == pytest.approx(
        lexicon.score(a) + lexicon.score(b)
    )
