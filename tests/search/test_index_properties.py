"""Property tests for incremental index maintenance (hypothesis).

The serve layer builds "previous generation + delta" indexes out of
:meth:`InvertedIndex.clone` + :meth:`add_document`; these properties pin
the invariant that makes that safe: however a document set reaches the
index — one at a time, batched, re-added, via clone-and-extend — the
resulting index answers queries identically to a fresh bulk build.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.serve.shards import ShardedIndex

WORDS = ["acme", "acquired", "revenue", "ceo", "plant", "growth"]

text_strategy = st.lists(
    st.sampled_from(WORDS), max_size=10
).map(" ".join)

docs_strategy = st.dictionaries(
    keys=st.sampled_from([f"doc-{i}" for i in range(6)]),
    values=text_strategy,
    max_size=6,
)


def canonical(index: InvertedIndex) -> dict:
    """A comparable dump of the index's observable state."""
    return {
        "docs": sorted(index.doc_keys()),
        "lengths": {
            key: index.doc_length(key) for key in index.doc_keys()
        },
        "titles": {key: index.title(key) for key in index.doc_keys()},
        "postings": {
            word: {
                doc_key: list(posting.positions)
                for doc_key, posting in index.postings(word).items()
            }
            for word in WORDS
        },
    }


@given(docs_strategy)
def test_incremental_adds_equal_bulk_rebuild(docs):
    incremental = InvertedIndex()
    for doc_key, text in docs.items():
        incremental.add_document(doc_key, text, title=doc_key)
    bulk = InvertedIndex.from_documents(
        (doc_key, text, doc_key) for doc_key, text in docs.items()
    )
    assert canonical(incremental) == canonical(bulk)


@given(docs_strategy, text_strategy)
def test_readd_replaces_and_equals_final_state(docs, new_text):
    if not docs:
        return
    target = sorted(docs)[0]
    index = InvertedIndex()
    for doc_key, text in docs.items():
        index.add_document(doc_key, text)
    index.add_document(target, new_text)
    final = dict(docs)
    final[target] = new_text
    expected = InvertedIndex.from_documents(
        (doc_key, text, "") for doc_key, text in final.items()
    )
    assert canonical(index) == canonical(expected)


@given(docs_strategy)
def test_add_then_remove_equals_never_added(docs):
    if not docs:
        return
    target = sorted(docs)[0]
    index = InvertedIndex()
    for doc_key, text in docs.items():
        index.add_document(doc_key, text)
    index.remove_document(target)
    expected = InvertedIndex.from_documents(
        (doc_key, text, "")
        for doc_key, text in docs.items()
        if doc_key != target
    )
    assert canonical(index) == canonical(expected)
    assert target not in index


@given(docs_strategy, docs_strategy)
def test_clone_plus_delta_equals_bulk_rebuild(base, delta):
    original = InvertedIndex.from_documents(
        (doc_key, text, "") for doc_key, text in base.items()
    )
    before = canonical(original)
    extended = original.clone()
    for doc_key, text in delta.items():
        extended.add_document(doc_key, text)
    merged = dict(base)
    merged.update(delta)
    expected = InvertedIndex.from_documents(
        (doc_key, text, "") for doc_key, text in merged.items()
    )
    assert canonical(extended) == canonical(expected)
    # Copy-on-write isolation: the original never observes the delta.
    assert canonical(original) == before


@given(docs_strategy, docs_strategy, st.integers(1, 4))
def test_sharded_extend_equals_full_rebuild(base, delta, n_shards):
    merged = dict(base)
    merged.update(delta)

    extended = ShardedIndex(n_shards=n_shards)
    extended.rebuild(
        (doc_key, text, "") for doc_key, text in base.items()
    )
    # The delta may overlap the base: extend must replace, not dup.
    extended.extend(
        (doc_key, text, "") for doc_key, text in delta.items()
    )
    rebuilt = ShardedIndex(n_shards=n_shards)
    rebuilt.rebuild(
        (doc_key, text, "") for doc_key, text in merged.items()
    )

    assert extended.snapshot.n_docs == rebuilt.snapshot.n_docs
    assert (
        extended.snapshot.shard_sizes()
        == rebuilt.snapshot.shard_sizes()
    )
    for word in WORDS:
        assert [
            (result.doc_key, round(result.score, 9))
            for result in extended.search(word, top_k=10)
        ] == [
            (result.doc_key, round(result.score, 9))
            for result in rebuilt.search(word, top_k=10)
        ]


@given(docs_strategy)
def test_precomputed_engine_terms_equal_inline_tokenization(docs):
    """The annotate-once term stream must match indexing from text."""
    from repro.text.engine import AnnotationEngine

    cached = SearchEngine(text_engine=AnnotationEngine())
    inline = SearchEngine()
    for doc_key, text in docs.items():
        cached.add_document(doc_key, text, title=doc_key)
        inline.add_document(doc_key, text, title=doc_key)
    assert canonical(cached.index) == canonical(inline.index)
    for word in WORDS:
        assert [
            (result.doc_key, round(result.score, 9))
            for result in cached.search(word, top_k=10)
        ] == [
            (result.doc_key, round(result.score, 9))
            for result in inline.search(word, top_k=10)
        ]
