"""Query-biased snippet tests."""

from __future__ import annotations

import pytest

from repro.search.snippeting import best_snippet

DOCUMENT = (
    "Acme Inc is headquartered in Boston. "
    "The company sells databases to banks. "
    "Acme Inc named Mary Jones its new CEO on Monday. "
    "Shares closed higher after the announcement. "
    "The weather stayed mild."
)


class TestBestSnippet:
    def test_picks_matching_window(self):
        snippet = best_snippet(DOCUMENT, '"new ceo"')
        assert "new CEO" in snippet.text
        assert snippet.score > 0

    def test_phrase_outweighs_scattered_terms(self):
        text = (
            "A new strategy and a CEO were discussed separately. "
            "The board named a new CEO yesterday."
        )
        snippet = best_snippet(text, '"new ceo"', window=1)
        assert snippet.text == "The board named a new CEO yesterday."

    def test_highlighting_marks_terms(self):
        snippet = best_snippet(DOCUMENT, "ceo monday")
        assert "**CEO**" in snippet.highlighted
        assert "**Monday.**" in snippet.highlighted or (
            "**Monday**" in snippet.highlighted
        )

    def test_no_match_returns_lead(self):
        snippet = best_snippet(DOCUMENT, "zebra unicorns")
        assert snippet.score == 0.0
        assert snippet.text.startswith("Acme Inc is headquartered")

    def test_empty_document(self):
        snippet = best_snippet("", '"new ceo"')
        assert snippet.text == ""

    def test_window_size_respected(self):
        snippet = best_snippet(DOCUMENT, '"new ceo"', window=1)
        assert snippet.text == (
            "Acme Inc named Mary Jones its new CEO on Monday."
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            best_snippet(DOCUMENT, "x", window=0)

    def test_earliest_window_wins_ties(self):
        text = "First tie sentence here. Second tie sentence here."
        snippet = best_snippet(text, "tie", window=1)
        assert snippet.text == "First tie sentence here."
