"""Search-engine tests: parsing, phrase constraints, ranking."""

from __future__ import annotations

import pytest

from repro.search.engine import (
    SearchEngine,
    build_engine_from_pairs,
    parse_query,
)


@pytest.fixture
def engine():
    return build_engine_from_pairs(
        [
            ("appoint", "Acme named a new CEO this week after a search"),
            ("deal", "Acme agreed to acquire Globex for five billion"),
            ("earnings", "Globex posted revenue growth of ten percent"),
            ("noise", "a guide to hiking trails and local weather"),
            ("ceo2", "the new CEO of Initech outlined a new strategy"),
        ]
    )


class TestParseQuery:
    def test_plain_terms(self):
        parsed = parse_query("mergers and acquisitions")
        assert parsed.terms == ("mergers", "and", "acquisitions")
        assert parsed.phrases == ()

    def test_quoted_phrase(self):
        parsed = parse_query('"new ceo"')
        assert parsed.phrases == (("new", "ceo"),)
        assert parsed.terms == ()

    def test_mixed(self):
        parsed = parse_query('"new ceo" technology')
        assert parsed.phrases == (("new", "ceo"),)
        assert parsed.terms == ("technology",)

    def test_multiple_phrases(self):
        parsed = parse_query('"new ceo" "revenue growth"')
        assert len(parsed.phrases) == 2

    def test_all_terms_flattens(self):
        parsed = parse_query('"new ceo" deal')
        assert parsed.all_terms == ("new", "ceo", "deal")


class TestSearch:
    def test_phrase_restricts_results(self, engine):
        hits = engine.search('"new ceo"')
        keys = {hit.doc_key for hit in hits}
        assert keys == {"appoint", "ceo2"}

    def test_phrase_no_match_returns_empty(self, engine):
        assert engine.search('"purple elephant"') == []

    def test_keyword_ranking_prefers_relevant(self, engine):
        hits = engine.search("revenue growth")
        assert hits[0].doc_key == "earnings"

    def test_top_k_limits(self, engine):
        assert len(engine.search("a new acme globex", top_k=2)) == 2

    def test_empty_query(self, engine):
        assert engine.search("") == []

    def test_results_sorted_by_score(self, engine):
        hits = engine.search("acme globex new")
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tiebreak(self, engine):
        first = engine.search("the a")
        second = engine.search("the a")
        assert [h.doc_key for h in first] == [h.doc_key for h in second]

    def test_title_carried_through(self):
        engine = SearchEngine()
        engine.add_document("x", "acme expands", title="Acme grows")
        assert engine.search("acme")[0].title == "Acme grows"


class TestDegenerateQueries:
    """The serving layer feeds raw user input straight into search():
    zero-term queries must come back empty, never raise."""

    @pytest.mark.parametrize(
        "query",
        ["", "   ", "\t\n", '""', "'!!!'", "!!!", "...", '"  "', "&&&"],
    )
    def test_zero_term_query_returns_empty(self, engine, query):
        assert engine.search(query) == []

    @pytest.mark.parametrize("top_k", [0, -1, -100])
    def test_non_positive_top_k_returns_empty(self, engine, top_k):
        assert engine.search("acme", top_k=top_k) == []

    def test_degenerate_queries_do_not_mutate_state(self, engine):
        baseline = engine.search("acme")
        engine.search("!!!")
        engine.search("", top_k=0)
        assert engine.search("acme") == baseline


class TestSmartQueriesOverSyntheticWeb(object):
    """The paper's queries behave sensibly over a real generated web."""

    @pytest.fixture(scope="class")
    def web_engine(self, small_web):
        engine = SearchEngine()
        for document in small_web.documents:
            engine.add_document(
                document.doc_id, document.text, document.title
            )
        return engine

    def test_new_ceo_hits_are_mostly_cim(self, web_engine, small_web):
        by_id = {d.doc_id: d for d in small_web.documents}
        hits = web_engine.search('"new ceo"', top_k=20)
        assert hits, "smart query must return documents"
        cim = sum(
            by_id[h.doc_key].doc_type == "cim_news" for h in hits
        )
        assert cim / len(hits) >= 0.8

    def test_naive_query_noisier_than_phrase(self, web_engine, small_web):
        by_id = {d.doc_id: d for d in small_web.documents}

        def precision(query):
            hits = web_engine.search(query, top_k=20)
            if not hits:
                return None  # query found nothing on this small web
            good = sum(
                by_id[h.doc_key].doc_type == "ma_news" for h in hits
            )
            return good / len(hits)

        # Section 3.3.1: the naive keyword query is noisier than the
        # driver's phrase queries for concrete events.  Individual
        # phrases may miss entirely on a 300-document web, so compare
        # the best smart query against the naive topic query.
        from repro.core.drivers import get_driver
        from repro.corpus.templates import MERGERS_ACQUISITIONS

        smart = [
            precision(query)
            for query in get_driver(MERGERS_ACQUISITIONS).smart_queries
        ]
        smart = [p for p in smart if p is not None]
        assert smart, "no smart query matched at all"
        naive = precision("mergers and acquisitions") or 0.0
        assert max(smart) >= naive
