"""Provenance-graph tests: synthetic chains plus a real recorded run."""

from __future__ import annotations

import pytest

from repro.core.alerts import AlertService
from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs.events import EventLog
from repro.obs.provenance import (
    ProvenanceGraph,
    snippet_doc_id,
)


def test_snippet_doc_id():
    assert snippet_doc_id("doc-17#3") == "doc-17"
    assert snippet_doc_id("plain") == "plain"


def _synthetic_log() -> EventLog:
    """One complete hand-built chain: seed -> hop -> page -> alert."""
    log = EventLog(run_id="synthetic")
    log.emit("page_crawled", url="http://x/", depth=0)
    log.emit("page_crawled", url="http://x/news/", depth=1, via="http://x/")
    log.emit(
        "page_crawled",
        url="http://x/news/a.html",
        depth=2,
        via="http://x/news/",
        doc_id="doc-1",
    )
    log.emit(
        "doc_indexed",
        doc_id="doc-1",
        url="http://x/news/a.html",
        title="Acme to acquire Globex",
    )
    log.emit(
        "snippet_scored",
        lineage_id="doc-1",
        snippet_id="doc-1#0",
        doc_id="doc-1",
        driver_id="mergers",
        score=0.96,
    )
    log.emit(
        "trigger_classified",
        lineage_id="doc-1",
        snippet_id="doc-1#0",
        doc_id="doc-1",
        driver_id="mergers",
        score=0.96,
        rank=1,
        features=[["merger", 2.4], ["acquire", 1.1]],
        companies=["Acme Corp"],
        text="Acme Corp agreed to acquire Globex.",
    )
    log.emit(
        "alert_emitted",
        lineage_id="doc-1",
        alert_id="alert-1",
        cycle=1,
        driver_id="mergers",
        snippet_id="doc-1#0",
        doc_id="doc-1",
        score=0.96,
        rank=1,
    )
    return log


class TestSyntheticChain:
    @pytest.fixture
    def graph(self):
        return ProvenanceGraph.from_events(_synthetic_log())

    def test_explain_assembles_the_full_chain(self, graph):
        chain = graph.explain("alert-1")
        assert chain.driver_id == "mergers"
        assert chain.cycle == 1
        assert chain.score == pytest.approx(0.96)
        assert chain.rank == 1
        assert chain.snippet_id == "doc-1#0"
        assert chain.doc_id == "doc-1"
        assert chain.url == "http://x/news/a.html"
        assert chain.title == "Acme to acquire Globex"
        assert chain.crawl_depth == 2
        assert chain.crawl_path == ["http://x/news/", "http://x/"]
        assert chain.features == [("merger", 2.4), ("acquire", 1.1)]
        assert chain.companies == ["Acme Corp"]
        assert "Acme Corp agreed" in chain.snippet_text

    def test_render_mentions_every_link(self, graph):
        text = graph.explain("alert-1").render()
        for needle in (
            "alert alert-1",
            "driver mergers",
            "merger (+2.40)",
            "snippet doc-1#0",
            "doc doc-1",
            "url http://x/news/a.html",
            "via http://x/news/",
            "via http://x/",
        ):
            assert needle in text

    def test_graph_is_acyclic_and_complete(self, graph):
        assert graph.is_acyclic()
        assert graph.unreachable_alerts() == []
        nodes = graph.nodes()
        assert ("alert", "alert-1") in nodes
        assert ("doc", "doc-1") in nodes
        assert ("url", "http://x/news/a.html") in nodes

    def test_edges_point_cause_to_effect(self, graph):
        edges = set(graph.edges())
        assert (
            ("url", "http://x/"),
            ("url", "http://x/news/"),
        ) in edges
        assert (
            ("url", "http://x/news/a.html"),
            ("doc", "doc-1"),
        ) in edges
        assert (("doc", "doc-1"), ("snippet", "doc-1#0")) in edges
        assert (
            ("snippet", "doc-1#0"),
            ("classification", "mergers:doc-1#0"),
        ) in edges
        assert (
            ("classification", "mergers:doc-1#0"),
            ("alert", "alert-1"),
        ) in edges

    def test_unknown_alert_raises_with_hint(self, graph):
        with pytest.raises(KeyError, match="alert-1"):
            graph.explain("missing")


class TestBrokenChains:
    def test_alert_without_doc_is_unreachable(self):
        log = EventLog()
        log.emit(
            "alert_emitted",
            alert_id="orphan",
            cycle=1,
            driver_id="mergers",
            snippet_id="ghost#0",
            doc_id="ghost",
            score=0.9,
        )
        graph = ProvenanceGraph.from_events(log)
        assert graph.unreachable_alerts() == ["orphan"]

    def test_explain_degrades_without_classification(self):
        log = _synthetic_log()
        graph = ProvenanceGraph()
        for event in log.events():
            if event.event_type != "trigger_classified":
                graph.add(event)
        chain = graph.explain("alert-1")
        assert chain.features == []
        assert chain.rank == 1  # falls back to the alert payload
        assert chain.url == "http://x/news/a.html"

    def test_referrer_loop_does_not_hang(self):
        log = EventLog()
        log.emit("page_crawled", url="http://x/a", depth=1, via="http://x/b")
        log.emit("page_crawled", url="http://x/b", depth=1, via="http://x/a")
        graph = ProvenanceGraph.from_events(log)
        path = graph.crawl_path("http://x/a")
        assert path == ["http://x/b"]
        # The loop also shows up as a cycle in the hop graph.
        assert not graph.is_acyclic()


class TestRecordedRun:
    """Integration: a demo-scale alert run's log explains every alert."""

    @pytest.fixture(scope="class")
    def recorded(self):
        log = EventLog(run_id="itest")
        web = build_web(300, CorpusConfig(seed=47))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=50, negative_sample_size=600
            ),
            event_log=log,
        )
        etap.gather()
        etap.train()
        service = AlertService(etap, threshold=0.7)
        evolver = WebEvolver(web, CorpusConfig(seed=48))
        alerts = []
        for _ in range(2):
            evolver.advance(30)
            alerts.extend(service.poll().alerts)
        return log, alerts

    def test_run_produced_alerts(self, recorded):
        _, alerts = recorded
        assert alerts, "the evolving web must raise alerts to test on"

    def test_every_alert_reaches_a_crawled_page(self, recorded):
        log, _ = recorded
        graph = ProvenanceGraph.from_events(log)
        assert graph.is_acyclic()
        assert graph.unreachable_alerts() == []
        assert len(graph.alerts) > 0

    def test_every_alert_explains_completely(self, recorded):
        log, alerts = recorded
        graph = ProvenanceGraph.from_events(log)
        for alert in alerts:
            chain = graph.explain(alert.alert_id)
            assert chain.url, alert.alert_id
            assert chain.doc_id == alert.event.doc_id
            assert chain.features, "evidence must be recorded"
            rendered = chain.render()
            assert chain.url in rendered
