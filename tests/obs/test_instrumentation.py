"""The pipeline's tracer wiring: spans and counters actually emitted.

Runs a tiny end-to-end pipeline under a real Tracer and checks the
span tree and counter names the CLI's ``--profile`` report relies on.
"""

from __future__ import annotations

import pytest

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.gather.pipeline import DataGatherer
from repro.obs import StageReport, Tracer


@pytest.fixture(scope="module")
def traced_pipeline():
    tracer = Tracer()
    web = build_web(150, CorpusConfig(seed=5))
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=40, negative_sample_size=400),
        tracer=tracer,
    )
    gather_report = etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    etap.company_report(events)
    return tracer, gather_report


class TestSpanTree:
    def test_top_level_stages(self, traced_pipeline):
        tracer, _ = traced_pipeline
        names = [span.name for span in tracer.roots]
        assert names == ["gather", "train", "extract", "rank.companies"]

    def test_gather_children(self, traced_pipeline):
        tracer, _ = traced_pipeline
        gather = tracer.roots[0]
        child_names = [child.name for child in gather.children]
        assert child_names == ["gather.crawl", "gather.store_index"]
        store_index = gather.children[1]
        # The initial gather runs the process-sharded ingest inside
        # the store_index span: shard tokenization, then the merge.
        assert [child.name for child in store_index.children] == [
            "ingest.shards", "ingest.merge",
        ]

    def test_train_children_cover_every_driver(self, traced_pipeline):
        tracer, _ = traced_pipeline
        train = tracer.roots[1]
        names = [child.name for child in train.children]
        assert names[0] == "train.negative_sample"
        fits = [n for n in names if n.startswith("train.fit[")]
        noisy = [n for n in names if n.startswith("train.noisy_positive[")]
        assert len(fits) == 3
        assert len(noisy) == 3

    def test_extract_children(self, traced_pipeline):
        tracer, _ = traced_pipeline
        extract = tracer.roots[2]
        names = [child.name for child in extract.children]
        assert names[0] == "extract.annotate"
        assert sum(n.startswith("extract.score[") for n in names) == 3

    def test_all_spans_closed_with_positive_duration(
        self, traced_pipeline
    ):
        tracer, _ = traced_pipeline

        def walk(spans):
            for span in spans:
                yield span
                yield from walk(span.children)

        for span in walk(tracer.roots):
            assert span.ended is not None, span.name
            assert span.duration >= 0.0


class TestCountersAndReports:
    def test_expected_counters_present(self, traced_pipeline):
        tracer, _ = traced_pipeline
        counters = tracer.registry.counters
        for name in (
            "crawl.pages_fetched",
            "gather.documents_stored",
            "engine.documents_indexed",
            "engine.searches",
            "train.snippets_seen",
            "classifier.snippets_scored",
            "extract.trigger_events",
            "rank.companies_scored",
        ):
            assert name in counters, name
        assert counters["engine.documents_indexed"] == counters[
            "gather.documents_stored"
        ]

    def test_gather_report_timing_fields(self, traced_pipeline):
        _, gather_report = traced_pipeline
        assert gather_report.total_seconds > 0.0
        assert gather_report.crawl_seconds > 0.0
        assert gather_report.index_seconds > 0.0
        assert gather_report.total_seconds >= (
            gather_report.crawl_seconds
        )

    def test_search_histograms_recorded(self, traced_pipeline):
        tracer, _ = traced_pipeline
        histograms = tracer.registry.histograms
        assert "engine.search_seconds" in histograms
        assert "engine.results_per_search" in histograms
        assert (
            histograms["engine.search_seconds"].count
            == tracer.registry.counter("engine.searches").value
        )

    def test_stage_report_renders_and_serializes(self, traced_pipeline):
        tracer, _ = traced_pipeline
        report = StageReport.from_tracer(tracer)
        text = report.render()
        assert "gather.crawl" in text
        assert "extract" in text
        payload = report.to_dict()
        assert payload["counters"]["crawl.pages_fetched"] > 0


class TestNullPath:
    def test_uninstrumented_summaries_report_zero_seconds(self):
        web = build_web(150, CorpusConfig(seed=5))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=40, negative_sample_size=400
            ),
        )
        report = etap.gather()
        assert report.total_seconds == 0.0
        assert report.crawl_seconds == 0.0
        summaries = etap.train()
        assert all(s.fit_seconds == 0.0 for s in summaries.values())

    def test_default_gatherer_records_nothing(self):
        web = build_web(60, CorpusConfig(seed=2))
        gatherer = DataGatherer(web)
        gatherer.gather()
        assert gatherer.tracer.roots == []
