"""Regression: recorders passed to constructors are never null-swapped.

A fresh ``EventLog()`` has zero events and a fresh ``Tracer()`` has no
spans; if either were falsy, the common wiring idiom
``self.event_log = event_log or NULL_EVENT_LOG`` would silently replace
a caller's empty-but-real recorder with the null object and the first
events of a run would vanish.  ``EventLog.__bool__``/``Tracer`` are
truthy by contract — this suite pins both the contract and every
constructor that relies on it.
"""

from __future__ import annotations

import inspect

import pytest

import repro.cli  # noqa: F401 -- force-import the full package tree
import repro.queries  # noqa: F401 -- cli imports the planner lazily
from repro.core.alerts import AlertService
from repro.core.classifier import TriggerEventClassifier
from repro.core.etap import Etap, EtapConfig
from repro.core.ranking import CompanyRanker
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.gather.dedup import NearDuplicateIndex
from repro.gather.ingest import ShardedIngester
from repro.gather.pipeline import DataGatherer
from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.health import HealthMonitor
from repro.obs.slo import SloEngine, default_slos
from repro.obs.timeseries import NULL_TELEMETRY, Telemetry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.robustness.fetcher import ResilientFetcher
from repro.search.crawler import FocusedCrawler
from repro.search.engine import SearchEngine


def test_fresh_recorders_are_truthy():
    assert EventLog(), "an empty EventLog must be truthy"
    assert Tracer(), "a fresh Tracer must be truthy"
    assert len(EventLog()) == 0  # falsy-prone without __bool__
    assert Telemetry(), "a fresh Telemetry must be truthy"
    assert NULL_TELEMETRY, "NULL_TELEMETRY shares the truthy contract"
    assert not NULL_TELEMETRY.enabled  # gate on .enabled, not bool()


WEB = build_web(30, CorpusConfig(seed=2))


def recorder_keepers():
    """(name, factory) for every constructor taking tracer/event_log."""
    gatherer = DataGatherer(WEB)
    etap = Etap.from_web(build_web(30, CorpusConfig(seed=2)))
    yield "FocusedCrawler", lambda t, e: FocusedCrawler(
        WEB, tracer=t, event_log=e
    )
    yield "DataGatherer", lambda t, e: DataGatherer(
        WEB, tracer=t, event_log=e
    )
    yield "Etap", lambda t, e: Etap.from_web(
        WEB, tracer=t, event_log=e
    )
    yield "SearchEngine", lambda t, e: SearchEngine(
        tracer=t, event_log=e
    )
    yield "TriggerEventClassifier", lambda t, e: TriggerEventClassifier(
        driver_id="revenue_growth", tracer=t, event_log=e
    )
    yield "CompanyRanker", lambda t, e: CompanyRanker(
        tracer=t, event_log=e
    )
    yield "NearDuplicateIndex", lambda t, e: NearDuplicateIndex(
        event_log=e
    )
    yield "TrainingDataGenerator", lambda t, e: _training_generator(
        gatherer, t
    )
    yield "ResilientFetcher", lambda t, e: ResilientFetcher(
        WEB, tracer=t, event_log=e
    )
    yield "ShardedIngester", lambda t, e: ShardedIngester(
        tracer=t, event_log=e
    )
    yield "AlertService", lambda t, e: _alert_service(etap, e)
    yield "ShardedIndex", lambda t, e: _sharded_index(t, e)
    yield "WorkerPool", lambda t, e: _worker_pool(t)
    yield "AdmissionController", lambda t, e: _admission(t)
    yield "AlertPortal", lambda t, e: _portal(etap, t, e)
    yield "QueryCache", lambda t, e: _query_cache(e)
    yield "ReplicaSet", lambda t, e: _replica_set(t, e)
    yield "HedgedRouter", lambda t, e: _hedged_router(t, e)
    yield "StreamProcessor", lambda t, e: _stream_processor(etap, t, e)
    yield "SloEngine", lambda t, e: SloEngine(
        default_slos(), Telemetry(), event_log=e
    )
    yield "HealthMonitor", lambda t, e: HealthMonitor(event_log=e)
    yield "CandidateGenerator", lambda t, e: _candidate_generator(t)
    yield "QueryEvaluator", lambda t, e: _query_evaluator(
        gatherer, t, e
    )
    yield "PortfolioPlanner", lambda t, e: _portfolio_planner(t, e)


def _training_generator(gatherer, tracer):
    from repro.core.snippets import SnippetGenerator
    from repro.core.training import TrainingDataGenerator
    from repro.text.annotator import Annotator

    return TrainingDataGenerator(
        store=gatherer.store,
        engine=gatherer.engine,
        annotator=Annotator(),
        snippet_generator=SnippetGenerator(),
        tracer=tracer,
    )


def _candidate_generator(tracer):
    from repro.queries.generate import CandidateGenerator

    return CandidateGenerator(tracer=tracer)


def _query_evaluator(gatherer, tracer, event_log):
    from repro.queries.evaluate import QueryEvaluator, StoreGroundTruth

    return QueryEvaluator(
        gatherer.engine,
        StoreGroundTruth(gatherer.store),
        tracer=tracer,
        event_log=event_log,
    )


def _portfolio_planner(tracer, event_log):
    from repro.queries.planner import PortfolioPlanner

    return PortfolioPlanner(tracer=tracer, event_log=event_log)


def _alert_service(etap, event_log):
    # AlertService only checks that classifiers exist; a stub is enough
    # for a wiring test and avoids training a real model here.
    etap.classifiers.setdefault("stub", object())
    return AlertService(etap, event_log=event_log)


def _sharded_index(tracer, event_log):
    from repro.serve.shards import ShardedIndex

    return ShardedIndex(n_shards=2, tracer=tracer, event_log=event_log)


def _worker_pool(tracer):
    from repro.serve.workers import WorkerPool

    pool = WorkerPool(lambda key: key, max_workers=1, tracer=tracer)
    pool.shutdown()
    return pool


def _admission(tracer):
    from repro.serve.admission import AdmissionController

    return AdmissionController(tracer=tracer)


def _query_cache(event_log):
    from repro.serve.cache import QueryCache

    return QueryCache(event_log=event_log)


def _replica_set(tracer, event_log):
    from repro.serve.replication import ReplicaSet

    return ReplicaSet(
        n_shards=1, n_replicas=2, tracer=tracer, event_log=event_log
    )


def _hedged_router(tracer, event_log):
    from repro.serve.replication import ReplicaSet
    from repro.serve.router import HedgedRouter

    return HedgedRouter(
        ReplicaSet(n_shards=1, n_replicas=2),
        tracer=tracer,
        event_log=event_log,
    )


def _stream_processor(etap, tracer, event_log):
    from repro.stream import StreamProcessor

    # Streaming needs trained classifiers; a stub satisfies the guard
    # (see _alert_service) and the empty store keeps the rebuild cheap.
    etap.classifiers.setdefault("stub", object())
    return StreamProcessor(etap, tracer=tracer, event_log=event_log)


def _portal(etap, tracer, event_log):
    from repro.serve.portal import AlertPortal

    portal = AlertPortal(
        etap.store, n_shards=1, tracer=tracer, event_log=event_log
    )
    portal.close()
    return portal


@pytest.mark.parametrize(
    "name,factory", list(recorder_keepers()), ids=lambda v: v
    if isinstance(v, str) else ""
)
def test_constructors_keep_fresh_recorders(name, factory):
    tracer, log = Tracer(), EventLog()
    obj = factory(tracer, log)
    kept_tracer = getattr(obj, "tracer", None)
    kept_log = getattr(obj, "event_log", None)
    assert kept_tracer is not NULL_TRACER or kept_log is not NULL_EVENT_LOG, (
        f"{name} null-swapped both recorders"
    )
    if kept_tracer is not None:
        assert kept_tracer is tracer, (
            f"{name} replaced a fresh Tracer with {kept_tracer!r}"
        )
    if kept_log is not None:
        assert kept_log is log, (
            f"{name} replaced a fresh EventLog with {kept_log!r}"
        )


def test_every_recorder_constructor_is_covered():
    """Inspect-scan the package so new constructors join the audit.

    Walks every class reachable from the imported ``repro`` modules and
    collects those whose ``__init__`` takes a ``tracer`` or
    ``event_log`` parameter; each must appear in the explicit audit
    list above (or be a recorder/null-object itself).
    """
    import sys

    audited = {name for name, _ in recorder_keepers()}
    exempt = {
        # The recorders themselves and their null twins.
        "EventLog", "NullEventLog", "Tracer", "NullTracer",
        # Thin report/export helpers that receive a recorder to *read*.
        "MetricsExporter", "StageReport",
        # Internal context managers handed an already-wired recorder.
        "_SpanContext", "_TimedContext",
    }
    found = set()
    for module_name, module in list(sys.modules.items()):
        if not module_name.startswith("repro"):
            continue
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__ != module_name:
                continue
            try:
                params = inspect.signature(cls.__init__).parameters
            except (TypeError, ValueError):  # pragma: no cover
                continue
            if "tracer" in params or "event_log" in params:
                found.add(cls.__name__)
    unaudited = found - audited - exempt
    assert not unaudited, (
        f"constructors taking tracer/event_log missing from this "
        f"audit: {sorted(unaudited)} — add them to recorder_keepers() "
        "(or exempt with a reason)"
    )


# -- telemetry wiring ---------------------------------------------------------
#
# The windowed-telemetry hub follows the same contract: a fresh
# ``Telemetry()`` (no observations yet) is truthy, so ``telemetry or
# NULL_TELEMETRY`` keeps it; sites that skip recording must gate on
# ``.enabled``, never on truthiness.


def telemetry_keepers():
    """(name, factory) for every constructor taking ``telemetry``."""
    etap = Etap.from_web(build_web(30, CorpusConfig(seed=2)))
    yield "ResilientFetcher", lambda tel: ResilientFetcher(
        WEB, telemetry=tel
    )
    yield "DataGatherer", lambda tel: DataGatherer(WEB, telemetry=tel)
    yield "Etap", lambda tel: Etap.from_web(WEB, telemetry=tel)
    yield "AlertPortal", lambda tel: _portal_with_telemetry(etap, tel)
    yield "StreamProcessor", lambda tel: _stream_with_telemetry(
        etap, tel
    )
    yield "SloEngine", lambda tel: SloEngine(default_slos(), tel)


def _portal_with_telemetry(etap, telemetry):
    from repro.serve.portal import AlertPortal

    portal = AlertPortal(etap.store, n_shards=1, telemetry=telemetry)
    portal.close()
    return portal


def _stream_with_telemetry(etap, telemetry):
    from repro.stream import StreamProcessor

    etap.classifiers.setdefault("stub", object())
    return StreamProcessor(etap, telemetry=telemetry)


@pytest.mark.parametrize(
    "name,factory", list(telemetry_keepers()), ids=lambda v: v
    if isinstance(v, str) else ""
)
def test_constructors_keep_fresh_telemetry(name, factory):
    telemetry = Telemetry()
    obj = factory(telemetry)
    kept = getattr(obj, "telemetry", None)
    assert kept is telemetry, (
        f"{name} replaced a fresh Telemetry with {kept!r}"
    )


@pytest.mark.parametrize(
    "name,factory", list(telemetry_keepers()), ids=lambda v: v
    if isinstance(v, str) else ""
)
def test_constructors_default_to_null_telemetry(name, factory):
    if name == "SloEngine":
        pytest.skip("SloEngine requires a real telemetry hub")
    obj = factory(None)
    assert obj.telemetry is NULL_TELEMETRY, (
        f"{name} without telemetry= must wire NULL_TELEMETRY, "
        f"got {obj.telemetry!r}"
    )


def test_every_telemetry_constructor_is_covered():
    """Inspect-scan mirror of the recorder audit for ``telemetry``."""
    import sys

    audited = {name for name, _ in telemetry_keepers()}
    exempt = {
        # The hub and its null twin take no telemetry themselves.
        "Telemetry", "NullTelemetry",
    }
    found = set()
    for module_name, module in list(sys.modules.items()):
        if not module_name.startswith("repro"):
            continue
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__ != module_name:
                continue
            try:
                params = inspect.signature(cls.__init__).parameters
            except (TypeError, ValueError):  # pragma: no cover
                continue
            if "telemetry" in params:
                found.add(cls.__name__)
    unaudited = found - audited - exempt
    assert not unaudited, (
        f"constructors taking telemetry missing from this audit: "
        f"{sorted(unaudited)} — add them to telemetry_keepers()"
    )
