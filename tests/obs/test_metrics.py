"""Counter / histogram / registry aggregation tests — all exact."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Histogram, Registry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("n").value == 0

    def test_add_accumulates(self):
        counter = Counter("n")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").add(-1)


class TestHistogram:
    def test_empty_summary_is_all_zero(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.minimum == 0.0
        assert histogram.maximum == 0.0
        assert histogram.percentile(50) == 0.0

    def test_aggregates_exactly(self):
        histogram = Histogram("h")
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0

    def test_percentiles_nearest_rank(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(2.0)
        summary = histogram.summary()
        assert summary == {
            "count": 1,
            "total": 2.0,
            "mean": 2.0,
            "min": 2.0,
            "max": 2.0,
            "p50": 2.0,
            "p95": 2.0,
        }


class TestHistogramBoundedMemory:
    """The unbounded ``values`` list now spills to a bounded sketch."""

    def test_small_histograms_stay_exact(self):
        histogram = Histogram("h", max_exact=100)
        values = [float((31 * i) % 97) for i in range(99)]
        for value in values:
            histogram.observe(value)
        assert histogram.exact
        assert histogram.values == values  # raw list survives small-n
        ordered = sorted(values)
        for p in (10, 50, 90, 95, 99):
            rank = max(int(-(-p * len(ordered) // 100)) - 1, 0)
            assert histogram.percentile(p) == ordered[rank]

    def test_spill_empties_the_raw_list(self):
        histogram = Histogram("h", max_exact=50)
        for value in range(200):
            histogram.observe(float(value))
        assert not histogram.exact
        assert histogram.values == []  # memory released at spill
        assert histogram.count == 200
        assert histogram.total == sum(range(200))
        assert histogram.minimum == 0.0
        assert histogram.maximum == 199.0

    def test_memory_is_bounded_past_the_threshold(self):
        histogram = Histogram("h", max_exact=64)
        for value in range(10_000):
            histogram.observe(float(value % 500))
        assert histogram.values == []
        assert not histogram.exact

    def test_post_spill_percentiles_stay_close(self):
        """Sketch percentiles track exact nearest-rank within ~2 ranks.

        A shuffled 0..999 ramp keeps the reference unambiguous: rank
        error directly maps to value error.
        """
        import random

        values = [float(i) for i in range(1000)]
        random.Random(7).shuffle(values)
        histogram = Histogram("h", max_exact=128)
        for value in values:
            histogram.observe(value)
        assert not histogram.exact
        for p in (50, 90, 95, 99):
            exact = float(10 * p - 1)  # nearest-rank on 0..999
            assert histogram.percentile(p) == pytest.approx(
                exact, abs=20.0
            )
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(100) == 999.0

    def test_summary_keys_survive_spill(self):
        histogram = Histogram("h", max_exact=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "total", "mean", "min", "max", "p50", "p95",
        }
        assert summary["count"] == 5
        assert summary["total"] == 15.0


class TestRegistry:
    def test_counters_created_on_first_use(self):
        registry = Registry()
        registry.count("a")
        registry.count("a", 2)
        registry.count("b", 7)
        assert registry.counters == {"a": 3, "b": 7}

    def test_same_name_same_instance(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")

    def test_snapshot_is_json_ready(self):
        import json

        registry = Registry()
        registry.count("docs", 12)
        registry.observe("seconds", 0.5)
        registry.observe("seconds", 1.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"docs": 12}
        assert snapshot["histograms"]["seconds"]["count"] == 2
        assert snapshot["histograms"]["seconds"]["mean"] == 1.0

    def test_names_sorted_in_views(self):
        registry = Registry()
        registry.count("zeta")
        registry.count("alpha")
        assert list(registry.counters) == ["alpha", "zeta"]
