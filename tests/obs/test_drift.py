"""Drift-monitor tests: baselines, breaches, and the small-batch guard."""

from __future__ import annotations

import pytest

from repro.obs.drift import (
    DriftBaseline,
    DriftMonitor,
    DriftThresholds,
    score_histogram,
    total_variation,
)


class TestHistogram:
    def test_normalized_over_unit_interval(self):
        hist = score_histogram([0.05, 0.05, 0.95, 0.55], bins=10)
        assert hist[0] == pytest.approx(0.5)
        assert hist[5] == pytest.approx(0.25)
        assert hist[9] == pytest.approx(0.25)
        assert sum(hist) == pytest.approx(1.0)

    def test_out_of_range_scores_clamp(self):
        hist = score_histogram([-3.0, 1.0, 2.0], bins=4)
        assert hist[0] == pytest.approx(1 / 3)
        assert hist[3] == pytest.approx(2 / 3)

    def test_empty_is_all_zero(self):
        assert score_histogram([], bins=3) == (0.0, 0.0, 0.0)

    def test_bins_must_be_positive(self):
        with pytest.raises(ValueError):
            score_histogram([0.5], bins=0)


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation((0.5, 0.5), (0.5, 0.5)) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation((1.0, 0.0), (0.0, 1.0)) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            total_variation((1.0,), (0.5, 0.5))


class TestBaseline:
    def test_from_training_summarizes_scores(self):
        baseline = DriftBaseline.from_training(
            "mergers",
            scores=[0.1, 0.2, 0.8, 0.9],
            vocabulary=["merger", "acquire"],
            threshold=0.5,
        )
        assert baseline.positive_rate == 0.5
        assert baseline.vocabulary == frozenset({"merger", "acquire"})
        assert sum(baseline.histogram) == pytest.approx(1.0)

    def test_empty_scores_give_zero_rate(self):
        baseline = DriftBaseline.from_training("mergers", scores=[])
        assert baseline.positive_rate == 0.0


class TestMonitor:
    def _monitor(self, train_scores, **kwargs) -> DriftMonitor:
        baseline = DriftBaseline.from_training(
            "mergers",
            scores=train_scores,
            vocabulary=["merger", "acquire", "deal"],
            threshold=0.5,
        )
        return DriftMonitor(baseline, **kwargs)

    def test_identical_distribution_is_quiet(self):
        train = [0.1] * 40 + [0.9] * 10
        monitor = self._monitor(train)
        assert monitor.check_scores(list(train)) == []

    def test_class_balance_breach(self):
        monitor = self._monitor([0.1] * 45 + [0.9] * 5)
        reports = monitor.check_scores([0.9] * 50)
        monitors = {r.monitor for r in reports}
        assert "class_balance" in monitors
        balance = next(
            r for r in reports if r.monitor == "class_balance"
        )
        assert balance.value > balance.threshold
        assert balance.driver_id == "mergers"
        assert "live" in balance.detail

    def test_score_distribution_breach(self):
        # Same positive rate, shifted mass within each side of the
        # threshold: only the histogram monitor should fire.
        monitor = self._monitor(
            [0.05] * 50,
            thresholds=DriftThresholds(
                class_balance_shift=0.25, score_divergence=0.35
            ),
        )
        reports = monitor.check_scores([0.45] * 50)
        assert [r.monitor for r in reports] == ["score_distribution"]

    def test_small_batch_is_skipped(self):
        monitor = self._monitor([0.1] * 50, min_batch=20)
        assert monitor.check_scores([0.99] * 19) == []
        assert monitor.check_scores([0.99] * 20) != []

    def test_oov_breach(self):
        monitor = self._monitor([0.1] * 50)
        known = [["merger", "acquire"]] * 10
        novel = [["blockchain", "synergy"]] * 10
        assert monitor.check_tokens(known) == []
        (report,) = monitor.check_tokens(novel)
        assert report.monitor == "vocabulary_oov"
        assert report.value == 1.0

    def test_oov_needs_vocabulary(self):
        baseline = DriftBaseline.from_training("mergers", scores=[0.1] * 50)
        monitor = DriftMonitor(baseline)
        assert monitor.check_tokens([["anything"]] * 50) == []

    def test_oov_small_token_count_skipped(self):
        monitor = self._monitor([0.1] * 50, min_batch=20)
        assert monitor.check_tokens([["blockchain"]] * 19) == []

    def test_check_combines_monitors(self):
        monitor = self._monitor([0.1] * 50)
        reports = monitor.check(
            [0.99] * 50, [["blockchain", "synergy"]] * 20
        )
        monitors = {r.monitor for r in reports}
        assert "class_balance" in monitors
        assert "vocabulary_oov" in monitors
