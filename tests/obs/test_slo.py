"""SLO engine: spec validation, burn-rate math, config, breach events.

The burn-rate suite checks the engine against an independent reference
model (plain ratio arithmetic over the same counts) under hypothesis;
the config suite pins ``configs/slos.yaml`` to :func:`default_slos` so
the committed file and the in-code defaults cannot drift apart.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.clock import FakeClock
from repro.obs.events import EventLog
from repro.obs.slo import (
    CONFIG_VERSION,
    DEFAULT_FAST_BURN,
    DEFAULT_SLOW_BURN,
    SloEngine,
    SloSpec,
    default_slos,
    load_slo_config,
    parse_slo_config,
)
from repro.obs.timeseries import Telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]
SLOS_YAML = REPO_ROOT / "configs" / "slos.yaml"


def availability_spec(**overrides) -> SloSpec:
    kwargs = dict(
        name="avail",
        objective="availability",
        target=0.9,
        component="fetch",
        good_series="ok",
        total_series="total",
    )
    kwargs.update(overrides)
    return SloSpec(**kwargs)


def fresh_engine(specs, **engine_kwargs):
    clock = FakeClock(start=10_000.0)
    telemetry = Telemetry(clock=clock, interval=1.0, n_buckets=7200)
    return clock, telemetry, SloEngine(
        specs, telemetry, **engine_kwargs
    )


# -- spec validation ----------------------------------------------------------


class TestSloSpec:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            SloSpec(name="x", objective="karma", target=0.5)

    def test_ratio_targets_must_be_fractions(self):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            availability_spec(target=1.0)

    def test_ratio_series_are_required(self):
        with pytest.raises(ValueError, match="total_series"):
            availability_spec(total_series="")
        with pytest.raises(ValueError, match="good_series"):
            availability_spec(good_series="")
        with pytest.raises(ValueError, match="bad_series"):
            SloSpec(
                name="dl", objective="dead_letter_rate", target=0.05,
                total_series="total",
            )

    def test_threshold_objectives_need_their_source(self):
        with pytest.raises(ValueError, match="sketch"):
            SloSpec(name="lat", objective="latency", target=0.25)
        with pytest.raises(ValueError, match="series"):
            SloSpec(name="fresh", objective="freshness", target=3.0)
        with pytest.raises(ValueError, match="positive"):
            SloSpec(
                name="lat", objective="latency", target=0.0,
                sketch="serve.latency",
            )

    def test_windows_and_burns_must_be_positive(self):
        with pytest.raises(ValueError, match="windows"):
            availability_spec(fast_window=0.0)
        with pytest.raises(ValueError, match="burn"):
            availability_spec(slow_burn=0.0)

    def test_budget_per_objective(self):
        assert availability_spec(target=0.97).budget == pytest.approx(
            0.03
        )
        dl = SloSpec(
            name="dl", objective="dead_letter_rate", target=0.05,
            bad_series="bad", total_series="total",
        )
        assert dl.budget == 0.05

    def test_engine_rejects_duplicate_names(self):
        telemetry = Telemetry(clock=FakeClock())
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine(
                [availability_spec(), availability_spec()], telemetry
            )


# -- burn-rate evaluation ------------------------------------------------------


class TestBurnRates:
    def test_no_traffic_is_ok(self):
        _, _, engine = fresh_engine([availability_spec()])
        (status,) = engine.evaluate()
        assert status.severity == "ok"
        assert status.burn_fast == 0.0
        assert status.budget_remaining == 1.0
        assert status.n_samples == 0

    def test_sustained_errors_page(self):
        clock, telemetry, engine = fresh_engine([availability_spec()])
        for _ in range(100):
            telemetry.record("total")
        for _ in range(50):
            telemetry.record("ok")
        (status,) = engine.evaluate()
        # Error ratio 0.5 against a 0.1 budget: burn 5.0 in both
        # windows — fast (>= 2.0) and slow (>= 1.0) both breach.
        assert status.burn_fast == pytest.approx(5.0)
        assert status.burn_slow == pytest.approx(5.0)
        assert status.breaching
        assert status.severity == "page"
        assert status.budget_remaining == 0.0

    def test_fast_spike_alone_only_warns(self):
        spec = availability_spec(fast_window=10.0, slow_window=3600.0)
        clock, telemetry, engine = fresh_engine([spec])
        # An hour of clean traffic, then a 100%-error spike in the
        # last 10 seconds: fast window burns, slow window stays below
        # its threshold -> warn, not page.
        for _ in range(3000):
            telemetry.record("total")
            telemetry.record("ok")
            clock.advance(1.0)
        for _ in range(5):
            telemetry.record("total")
            clock.advance(1.0)
        (status,) = engine.evaluate()
        assert status.breaching_fast
        assert not status.breaching_slow
        assert status.severity == "warn"
        assert not status.breaching

    def test_latency_objective_reads_sketch_quantile(self):
        spec = SloSpec(
            name="p99", objective="latency", target=0.1,
            sketch="serve.latency", quantile=0.99,
        )
        _, telemetry, engine = fresh_engine([spec])
        for _ in range(98):
            telemetry.observe("serve.latency", 0.01)
        for _ in range(2):  # nearest-rank p99 of 100 lands on these
            telemetry.observe("serve.latency", 0.4)
        (status,) = engine.evaluate()
        assert status.value_fast == pytest.approx(0.4)
        assert status.burn_fast == pytest.approx(4.0)
        assert status.breaching

    def test_freshness_objective_reads_windowed_max(self):
        spec = SloSpec(
            name="fresh", objective="freshness", target=2.0,
            series="stream.freshness_days",
        )
        _, telemetry, engine = fresh_engine([spec])
        telemetry.record("stream.freshness_days", value=0.0)
        (status,) = engine.evaluate()
        assert status.severity == "ok"
        telemetry.observe("stream.freshness_days", 5.0)
        (status,) = engine.evaluate()
        assert status.burn_fast == pytest.approx(2.5)
        assert status.breaching

    def test_budgets_do_not_emit_breaches(self):
        log = EventLog()
        clock, telemetry, engine = fresh_engine(
            [availability_spec()], event_log=log
        )
        for _ in range(10):
            telemetry.record("total")
        budgets = engine.budgets()
        assert budgets == {"avail": 0.0}  # 100% errors: budget gone
        assert log.events("slo_breach") == []

    @settings(max_examples=80, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=500),
        good=st.integers(min_value=0, max_value=500),
        target=st.floats(min_value=0.5, max_value=0.99),
    )
    def test_ratio_burn_matches_reference_model(
        self, total, good, target
    ):
        """Engine burn == plain arithmetic on the same counts."""
        good = min(good, total)
        spec = availability_spec(target=target)
        _, telemetry, engine = fresh_engine([spec])
        if total:
            telemetry.record("total", n=total)
        if good:
            telemetry.record("ok", n=good)
        (status,) = engine.evaluate()
        budget = 1.0 - target
        error_ratio = (total - good) / total if total else 0.0
        expected_burn = error_ratio / budget
        assert status.burn_fast == pytest.approx(expected_burn)
        assert status.burn_slow == pytest.approx(expected_burn)
        assert status.breaching == (
            expected_burn >= DEFAULT_FAST_BURN
            and expected_burn >= DEFAULT_SLOW_BURN
        )
        assert status.budget_remaining == pytest.approx(
            min(1.0, max(0.0, 1.0 - expected_burn))
        )
        assert status.n_samples == total

    @settings(max_examples=60, deadline=None)
    @given(
        bad=st.integers(min_value=0, max_value=200),
        extra=st.integers(min_value=0, max_value=500),
        target=st.floats(min_value=0.01, max_value=0.5),
    )
    def test_dead_letter_burn_matches_reference_model(
        self, bad, extra, target
    ):
        total = bad + extra
        spec = SloSpec(
            name="dl", objective="dead_letter_rate", target=target,
            bad_series="bad", total_series="total",
        )
        _, telemetry, engine = fresh_engine([spec])
        if total:
            telemetry.record("total", n=total)
        if bad:
            telemetry.record("bad", n=bad)
        (status,) = engine.evaluate()
        expected_burn = (bad / total) / target if total else 0.0
        assert status.burn_fast == pytest.approx(expected_burn)


# -- breach events -------------------------------------------------------------


class TestBreachEvents:
    def test_breach_is_edge_triggered_and_rearms(self):
        log = EventLog()
        spec = availability_spec(
            fast_window=10.0, slow_window=10.0
        )
        clock, telemetry, engine = fresh_engine([spec], event_log=log)
        telemetry.record("total", n=10)  # 100% errors
        engine.evaluate()
        engine.evaluate()
        engine.evaluate()
        assert len(log.events("slo_breach")) == 1  # one per excursion

        clock.advance(3600.0)  # windows drain -> recovery
        (status,) = engine.evaluate()
        assert not status.breaching
        assert len(log.events("slo_breach")) == 1

        telemetry.record("total", n=10)  # second excursion
        engine.evaluate()
        assert len(log.events("slo_breach")) == 2

    def test_breach_payload_schema(self):
        log = EventLog()
        _, telemetry, engine = fresh_engine(
            [availability_spec()], event_log=log
        )
        telemetry.record("total", n=20)
        engine.evaluate()
        (event,) = log.events("slo_breach")
        payload = event.payload
        assert payload["slo"] == "avail"
        assert payload["objective"] == "availability"
        assert payload["component"] == "fetch"
        assert payload["window"] == "fast+slow"
        assert payload["burn_rate"] == pytest.approx(10.0)
        assert payload["budget_remaining"] == 0.0
        assert payload["target"] == 0.9


# -- config loading ------------------------------------------------------------


class TestConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="mapping"):
            parse_slo_config([])
        with pytest.raises(ValueError, match="version"):
            parse_slo_config({"version": 99, "slos": []})
        with pytest.raises(ValueError, match="non-empty"):
            parse_slo_config({"version": CONFIG_VERSION, "slos": []})
        with pytest.raises(ValueError, match="unknown SLO config keys"):
            parse_slo_config(
                {
                    "version": CONFIG_VERSION,
                    "slos": [
                        {
                            "name": "x", "objective": "latency",
                            "target": 1.0, "sketch": "s",
                            "threshold": 3,  # not a key
                        }
                    ],
                }
            )

    def test_windows_and_burn_subdicts(self):
        specs = parse_slo_config(
            {
                "version": CONFIG_VERSION,
                "slos": [
                    {
                        "name": "x",
                        "objective": "availability",
                        "target": 0.9,
                        "good_series": "ok",
                        "total_series": "total",
                        "windows": {"fast": 60, "slow": 600},
                        "burn": {"fast": 14.4, "slow": 6.0},
                    }
                ],
            }
        )
        (spec,) = specs
        assert spec.fast_window == 60.0
        assert spec.slow_window == 600.0
        assert spec.fast_burn == 14.4
        assert spec.slow_burn == 6.0

    def test_json_config_loads(self, tmp_path):
        import json

        path = tmp_path / "slos.json"
        path.write_text(
            json.dumps(
                {
                    "version": CONFIG_VERSION,
                    "slos": [
                        {
                            "name": "lat", "objective": "latency",
                            "target": 0.5, "sketch": "serve.latency",
                        }
                    ],
                }
            )
        )
        (spec,) = load_slo_config(path)
        assert spec.name == "lat"
        assert spec.quantile == 0.99

    def test_committed_yaml_matches_default_slos(self):
        """configs/slos.yaml and default_slos() must not drift."""
        assert SLOS_YAML.exists(), "configs/slos.yaml is committed"
        from_yaml = load_slo_config(SLOS_YAML)
        assert from_yaml == default_slos()

    def test_default_slos_cover_the_pipeline(self):
        components = {spec.component for spec in default_slos()}
        assert components == {"fetch", "serve", "stream"}
        objectives = {spec.objective for spec in default_slos()}
        assert objectives == {
            "availability", "dead_letter_rate", "latency", "freshness",
        }
