"""StageReport rendering and serialization, driven by a FakeClock."""

from __future__ import annotations

import json

import pytest

from repro.obs import FakeClock, StageReport, Tracer


@pytest.fixture
def traced_run():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("gather") as gather:
        with tracer.span("gather.crawl") as crawl:
            clock.advance(2.0)
            crawl.add_items(100)
        with tracer.span("gather.index") as index:
            clock.advance(1.0)
            index.add_items(80)
        gather.add_items(80)
    tracer.count("pages_fetched", 100)
    tracer.observe("fetch_seconds", 0.5)
    return tracer


class TestRender:
    def test_tree_structure_and_exact_numbers(self, traced_run):
        text = StageReport.from_tracer(traced_run).render()
        lines = text.splitlines()
        assert lines[0].split() == ["stage", "wall", "s", "items",
                                    "items/s"]
        assert lines[1].startswith("gather")
        assert "3.000" in lines[1]
        # Children indented under the parent.
        assert lines[2].startswith("  gather.crawl")
        assert "2.000" in lines[2]
        assert "100" in lines[2]
        assert "50.0" in lines[2]  # 100 items / 2 s
        assert lines[3].startswith("  gather.index")
        assert "80.0" in lines[3]  # 80 items / 1 s

    def test_counters_appended(self, traced_run):
        text = StageReport.from_tracer(traced_run).render()
        assert "pages_fetched" in text
        assert "100" in text

    def test_counters_can_be_suppressed(self, traced_run):
        text = StageReport.from_tracer(traced_run).render(
            include_counters=False
        )
        assert "pages_fetched" not in text

    def test_empty_tracer_renders_placeholder(self):
        report = StageReport.from_tracer(Tracer(clock=FakeClock()))
        assert report.render() == "(no spans recorded)"


class TestToDict:
    def test_round_trips_through_json(self, traced_run):
        report = StageReport.from_tracer(traced_run)
        parsed = json.loads(report.to_json())
        assert parsed == report.to_dict()

    def test_exact_span_payload(self, traced_run):
        payload = StageReport.from_tracer(traced_run).to_dict()
        (gather,) = payload["spans"]
        assert gather["name"] == "gather"
        assert gather["seconds"] == 3.0
        assert gather["items"] == 80
        crawl, index = gather["children"]
        assert crawl == {
            "name": "gather.crawl",
            "seconds": 2.0,
            "items": 100,
            "throughput": 50.0,
            "children": [],
        }
        assert index["seconds"] == 1.0

    def test_metrics_in_payload(self, traced_run):
        payload = StageReport.from_tracer(traced_run).to_dict()
        assert payload["counters"] == {"pages_fetched": 100}
        assert payload["histograms"]["fetch_seconds"]["count"] == 1
        assert payload["histograms"]["fetch_seconds"]["mean"] == 0.5
