"""Prometheus exporter tests: render, parse, and derived gauges."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.obs.export import (
    derive_gauges,
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
)
from repro.obs.metrics import Registry
from repro.gather.scheduler import RevisitScheduler


class TestSanitize:
    def test_passthrough_for_legal_names(self):
        assert sanitize_metric_name("gather_docs_total") == (
            "gather_docs_total"
        )

    def test_dots_and_brackets_become_underscores(self):
        assert sanitize_metric_name("train.fit[mergers]") == (
            "train_fit_mergers_"
        )

    def test_leading_digit_gets_prefixed(self):
        name = sanitize_metric_name("9lives")
        assert name.startswith("_")
        assert parse_prometheus_text(f"{name} 1")


class TestRenderAndParse:
    def test_counter_round_trip(self):
        registry = Registry()
        registry.count("gather.documents_stored", 42)
        text = prometheus_text(registry)
        samples = parse_prometheus_text(text)
        assert samples[("repro_gather_documents_stored", ())] == 42.0
        assert "# TYPE repro_gather_documents_stored counter" in text

    def test_histogram_exports_as_summary(self):
        registry = Registry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("fetch_seconds", value)
        text = prometheus_text(registry)
        samples = parse_prometheus_text(text)
        assert samples[("repro_fetch_seconds_sum", ())] == 10.0
        assert samples[("repro_fetch_seconds_count", ())] == 4.0
        quantile_keys = [
            key for key in samples if key[0] == "repro_fetch_seconds"
        ]
        assert {labels for _, labels in quantile_keys} == {
            (("quantile", "0.50"),),
            (("quantile", "0.95"),),
        }
        assert "# TYPE repro_fetch_seconds summary" in text

    def test_labeled_gauges_round_trip(self):
        text = prometheus_text(
            Registry(),
            gauges={
                'positive_rate{driver="mergers"}': 0.25,
                'positive_rate{driver="change_in_management"}': 0.5,
                "dedup_ratio": 0.1,
            },
        )
        samples = parse_prometheus_text(text)
        assert samples[
            ("repro_positive_rate", (("driver", "mergers"),))
        ] == 0.25
        assert samples[
            ("repro_positive_rate", (("driver", "change_in_management"),))
        ] == 0.5
        assert samples[("repro_dedup_ratio", ())] == 0.1
        # One TYPE line per metric family, not per sample.
        assert text.count("# TYPE repro_positive_rate gauge") == 1

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_prometheus_text("this is { not metrics\n")
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("ok_name not_a_number\n")
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus_text('name{driver=unquoted} 1\n')

    def test_parser_skips_comments_and_blanks(self):
        assert parse_prometheus_text("# HELP x y\n\n# TYPE x counter\n") == {}


class TestDeriveGauges:
    def test_dedup_ratio_from_counters(self):
        registry = Registry()
        registry.count("gather.documents_stored", 80)
        registry.count("gather.duplicates_skipped", 15)
        registry.count("gather.near_duplicates_skipped", 5)
        gauges = derive_gauges(registry)
        assert gauges["dedup_ratio"] == pytest.approx(0.2)

    def test_no_dedup_ratio_without_traffic(self):
        assert "dedup_ratio" not in derive_gauges(Registry())

    def test_per_driver_positive_rate(self):
        registry = Registry()
        registry.count("extract.scored[mergers]", 200)
        registry.count("extract.flagged[mergers]", 10)
        registry.count("extract.scored[revenue_growth]", 100)
        registry.count("extract.flagged[revenue_growth]", 25)
        gauges = derive_gauges(registry)
        assert gauges['positive_rate{driver="mergers"}'] == 0.05
        assert gauges['positive_rate{driver="revenue_growth"}'] == 0.25

    def test_ingest_memory_per_doc_gauge(self):
        registry = Registry()
        registry.count("gather.documents_stored", 50)
        registry.count("ingest.memory_bytes", 125_000)
        gauges = derive_gauges(registry)
        assert gauges["ingest_memory_bytes_per_doc"] == pytest.approx(
            2500.0
        )

    def test_no_memory_gauge_without_counters(self):
        registry = Registry()
        registry.count("gather.documents_stored", 50)
        assert "ingest_memory_bytes_per_doc" not in derive_gauges(
            registry
        )

    def test_per_shard_doc_gauges(self):
        registry = Registry()
        registry.count("ingest.shard_docs[0]", 26)
        registry.count("ingest.shard_docs[1]", 24)
        gauges = derive_gauges(registry)
        assert gauges['ingest_shard_docs{shard="0"}'] == 26.0
        assert gauges['ingest_shard_docs{shard="1"}'] == 24.0

    def test_scheduler_gauges(self):
        scheduler = RevisitScheduler()
        scheduler.track("http://x/a")
        scheduler.track("http://x/b")
        gauges = derive_gauges(Registry(), scheduler=scheduler)
        assert gauges["scheduler_tracked_urls"] == 2.0
        assert gauges["scheduler_queue_depth"] == 2.0

    def test_event_log_gauge(self):
        log = EventLog()
        log.emit("run_started", command="demo")
        gauges = derive_gauges(Registry(), event_log=log)
        assert gauges["events_emitted"] == 1.0

    def test_everything_renders_and_parses(self):
        registry = Registry()
        registry.count("extract.scored[mergers]", 10)
        registry.count("extract.flagged[mergers]", 1)
        registry.count("gather.documents_stored", 9)
        registry.count("gather.duplicates_skipped", 1)
        text = prometheus_text(registry, gauges=derive_gauges(registry))
        samples = parse_prometheus_text(text)
        assert ("repro_dedup_ratio", ()) in samples
        assert (
            "repro_positive_rate",
            (("driver", "mergers"),),
        ) in samples
