"""Health monitor: probes, SLO mapping, transitions, probe factories."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock
from repro.obs.events import EventLog
from repro.obs.health import (
    EXIT_CODES,
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_OK,
    ComponentHealth,
    HealthMonitor,
    drift_probe,
    fetcher_probe,
    gather_probe,
    processor_probe,
    worst,
)
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.timeseries import Telemetry


def ok_probe(component):
    return lambda: ComponentHealth(component, STATUS_OK)


def make_engine(telemetry, **kwargs):
    spec = SloSpec(
        name="avail",
        objective="availability",
        target=0.9,
        component="fetch",
        good_series="ok",
        total_series="total",
    )
    return SloEngine([spec], telemetry, **kwargs)


class TestStatusAlgebra:
    def test_worst(self):
        assert worst() == STATUS_OK
        assert worst(STATUS_OK, STATUS_OK) == STATUS_OK
        assert worst(STATUS_OK, STATUS_DEGRADED) == STATUS_DEGRADED
        assert (
            worst(STATUS_DEGRADED, STATUS_CRITICAL, STATUS_OK)
            == STATUS_CRITICAL
        )

    def test_exit_codes(self):
        assert EXIT_CODES[STATUS_OK] == 0
        assert EXIT_CODES[STATUS_DEGRADED] == 1
        assert EXIT_CODES[STATUS_CRITICAL] == 2

    def test_component_health_validates_status(self):
        with pytest.raises(ValueError, match="unknown status"):
            ComponentHealth("x", "meh")


class TestRollup:
    def test_empty_monitor_is_ok(self):
        report = HealthMonitor().rollup()
        assert report.status == STATUS_OK
        assert report.components == ()
        assert report.slos == ()

    def test_overall_is_worst_component(self):
        monitor = HealthMonitor()
        monitor.register("a", ok_probe("a"))
        monitor.register(
            "b", lambda: ComponentHealth("b", STATUS_DEGRADED, "meh")
        )
        report = monitor.rollup()
        assert report.status == STATUS_DEGRADED
        assert report.reasons == ["b: meh"]

    def test_broken_probe_is_critical(self):
        monitor = HealthMonitor()
        def explode():
            raise RuntimeError("boom")
        monitor.register("a", explode)
        report = monitor.rollup()
        assert report.status == STATUS_CRITICAL
        (component,) = report.components
        assert "probe failed: boom" in component.reason

    def test_paging_slo_forces_component_critical(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, interval=1.0)
        monitor = HealthMonitor(make_engine(telemetry), clock=clock)
        monitor.register("fetch", ok_probe("fetch"))
        telemetry.record("total", n=10)  # 100% errors -> page
        report = monitor.rollup()
        assert report.status == STATUS_CRITICAL
        (fetch,) = report.components
        assert fetch.status == STATUS_CRITICAL
        assert "slo avail page" in fetch.reason
        (slo,) = report.slos
        assert slo.breaching

    def test_slo_creates_component_without_probe(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, interval=1.0)
        monitor = HealthMonitor(make_engine(telemetry), clock=clock)
        telemetry.record("total", n=10)
        report = monitor.rollup()
        assert [c.component for c in report.components] == ["fetch"]

    def test_slo_never_downgrades_a_probe_verdict(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, interval=1.0)
        monitor = HealthMonitor(make_engine(telemetry), clock=clock)
        monitor.register(
            "fetch",
            lambda: ComponentHealth("fetch", STATUS_CRITICAL, "down"),
        )
        # SLO is ok (no traffic) but the probe says critical.
        report = monitor.rollup()
        assert report.status == STATUS_CRITICAL
        assert report.components[0].reason == "down"

    def test_transition_events_are_edge_triggered(self):
        log = EventLog()
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, interval=1.0)
        monitor = HealthMonitor(
            make_engine(telemetry), event_log=log, clock=clock
        )
        monitor.rollup()  # first rollup: no previous -> no event
        monitor.rollup()  # steady ok -> no event
        assert log.events("health_transition") == []

        telemetry.record("total", n=10)
        monitor.rollup()  # ok -> critical
        (event,) = log.events("health_transition")
        assert event.payload["status"] == STATUS_CRITICAL
        assert event.payload["previous"] == STATUS_OK
        assert event.payload["reasons"]

        clock.advance(7200.0)  # windows drain -> recovery
        monitor.rollup()
        events = log.events("health_transition")
        assert len(events) == 2
        assert events[-1].payload["status"] == STATUS_OK

    def test_render_and_to_dict(self):
        monitor = HealthMonitor()
        monitor.register("a", ok_probe("a"))
        report = monitor.rollup()
        text = report.render()
        assert text.startswith("overall: ok")
        assert "a" in text
        payload = report.to_dict()
        assert payload["status"] == STATUS_OK
        assert payload["components"][0]["component"] == "a"
        assert payload["slos"] == []


class TestProbeFactories:
    def test_fetcher_probe(self):
        class FakeFetcher:
            dead_letters = ["u1", "u2"]
            def breaker_states(self):
                return {"a.com": "open", "b.com": "closed"}

        health = fetcher_probe(FakeFetcher())()
        assert health.status == STATUS_DEGRADED
        assert "a.com" in health.reason
        assert health.details["dead_letters"] == 2

        class QuietFetcher:
            dead_letters = []
            def breaker_states(self):
                return {"a.com": "closed"}

        assert fetcher_probe(QuietFetcher())().status == STATUS_OK

    def test_processor_probe(self):
        class FakeProcessor:
            late_arrivals = ["d1"]
            cycle = 3

        health = processor_probe(FakeProcessor())()
        assert health.status == STATUS_DEGRADED
        assert health.details["late_arrivals"] == 1

    def test_gather_probe(self):
        class EmptyReport:
            documents_stored = 0
            pages_failed = 0
            dead_letters = 0

        assert gather_probe(EmptyReport())().status == STATUS_CRITICAL

        class LossyReport:
            documents_stored = 100
            pages_failed = 5
            dead_letters = 5

        health = gather_probe(LossyReport())()
        assert health.status == STATUS_DEGRADED
        assert "5 failed page(s)" in health.reason

    def test_drift_probe(self):
        class Monitor:
            def __init__(self, breached):
                self.breached = breached

        probe = drift_probe({"pos": Monitor(True), "len": Monitor(False)})
        health = probe()
        assert health.status == STATUS_DEGRADED
        assert health.details["breached"] == ["pos"]
        assert drift_probe({})().status == STATUS_OK
