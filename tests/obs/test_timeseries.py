"""Windowed telemetry: ring-buffer windows and P² quantile sketches.

The sketch suite checks the bounded estimator against an exact
nearest-rank reference on adversarial value distributions (sorted
ramps, constants, two-point clusters, heavy tails); the ring-buffer
suite replays arbitrary (advance, record) schedules on a FakeClock
against a brute-force reference model of timestamped events.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.clock import FakeClock
from repro.obs.timeseries import (
    NULL_TELEMETRY,
    P2Quantile,
    QuantileSketch,
    Telemetry,
    TimeSeries,
    exact_quantile,
)

QS = (0.5, 0.9, 0.95, 0.99)


def rank_error(ordered: list[float], estimate: float, q: float) -> float:
    """Distance from ``q`` to the rank band ``estimate`` occupies.

    Zero when some data rank maps the estimate back to ``q``; the
    natural error measure for rank-based sketches (value error is
    meaningless on adversarial scales).
    """
    n = len(ordered)
    below = sum(1 for v in ordered if v < estimate) / n
    at_or_below = sum(1 for v in ordered if v <= estimate) / n
    if below <= q <= at_or_below:
        return 0.0
    return min(abs(q - below), abs(q - at_or_below))


# -- exact reference ----------------------------------------------------------


class TestExactQuantile:
    def test_empty_is_zero(self):
        assert exact_quantile([], 0.5) == 0.0

    def test_nearest_rank(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(data, 0.5) == 2.0
        assert exact_quantile(data, 0.75) == 3.0
        assert exact_quantile(data, 0.76) == 4.0

    def test_extremes_clamp(self):
        data = [5.0, 7.0]
        assert exact_quantile(data, 0.001) == 5.0
        assert exact_quantile(data, 0.999) == 7.0


# -- P² single-quantile estimator ---------------------------------------------


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_exact_below_five_observations(self):
        p2 = P2Quantile(0.5)
        for value in (9.0, 1.0, 5.0):
            p2.observe(value)
        assert not p2.initialized
        assert p2.value() == exact_quantile([1.0, 5.0, 9.0], 0.5)

    def test_uniform_ramp_is_close(self):
        p2 = P2Quantile(0.9)
        for i in range(1000):
            p2.observe(float(i % 100))
        assert 85.0 <= p2.value() <= 93.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=5, max_size=300,
        ),
        st.sampled_from(QS),
    )
    def test_estimate_stays_within_data_range(self, values, q):
        p2 = P2Quantile(q)
        for value in values:
            p2.observe(value)
        assert min(values) <= p2.value() <= max(values)


# -- bounded multi-quantile sketch --------------------------------------------

ADVERSARIAL = {
    "ascending-ramp": [float(i) for i in range(1000)],
    "descending-ramp": [float(1000 - i) for i in range(1000)],
    "constant": [42.0] * 1000,
    "two-clusters": [0.0] * 500 + [1000.0] * 500,
    "heavy-tail": [1.0] * 950 + [10.0**k for k in range(2, 7)] * 10,
    "sawtooth": [float(i % 13) for i in range(1000)],
}


class TestQuantileSketch:
    def test_validates_construction(self):
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=())
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=(0.5, 1.0))
        with pytest.raises(ValueError):
            QuantileSketch(exact_threshold=-1)

    def test_empty_sketch_reads_zero(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["p99"] == 0.0

    def test_exact_until_threshold(self):
        sketch = QuantileSketch(quantiles=QS, exact_threshold=50)
        values = [float((7 * i) % 49) for i in range(49)]
        for value in values:
            sketch.observe(value)
        assert sketch.exact
        ordered = sorted(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert sketch.quantile(q) == exact_quantile(ordered, q)

    def test_scalars_exact_after_spill(self):
        sketch = QuantileSketch(exact_threshold=10)
        values = [float(i) for i in range(500)]
        for value in values:
            sketch.observe(value)
        assert not sketch.exact
        assert sketch.count == 500
        assert sketch.total == sum(values)
        assert sketch.minimum == 0.0
        assert sketch.maximum == 499.0
        assert sketch.mean == pytest.approx(sum(values) / 500)

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    @pytest.mark.parametrize("q", QS)
    def test_rank_error_bound_on_adversarial_data(self, name, q):
        """Estimates stay close to exact on hostile distributions.

        Arrival order is a seeded shuffle — P², like any one-pass
        marker sketch, assumes roughly exchangeable arrival (fully
        sorted point-mass streams are covered by the ramp test below).
        An estimate passes when its rank band is within 0.12 of ``q``
        *or* its value is within 1% of the exact quantile: point-mass
        distributions make rank bands discontinuous, so a value
        epsilon above a mass holding the exact answer would otherwise
        read as a huge rank error.
        """
        import random
        import zlib

        values = list(ADVERSARIAL[name])
        random.Random(zlib.crc32(name.encode())).shuffle(values)
        sketch = QuantileSketch(quantiles=QS, exact_threshold=32)
        for value in values:
            sketch.observe(value)
        assert not sketch.exact
        ordered = sorted(values)
        estimate = sketch.quantile(q)
        exact = exact_quantile(ordered, q)
        error = rank_error(ordered, estimate, q)
        scale = max(abs(exact), 1e-12)
        value_error = abs(estimate - exact) / scale
        assert error <= 0.12 or value_error <= 0.01, (
            f"{name} p{q * 100:g}: rank error {error:.3f}, value "
            f"error {value_error:.3f} (estimate {estimate}, "
            f"exact {exact})"
        )

    @pytest.mark.parametrize("q", QS)
    def test_sorted_arrival_ramps_stay_tight(self, q):
        """Fully sorted arrival (both directions) barely moves P²."""
        for values in (
            ADVERSARIAL["ascending-ramp"],
            ADVERSARIAL["descending-ramp"],
        ):
            sketch = QuantileSketch(quantiles=QS, exact_threshold=32)
            for value in values:
                sketch.observe(value)
            error = rank_error(sorted(values), sketch.quantile(q), q)
            assert error <= 0.02

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=400,
        )
    )
    def test_envelope_is_bounded_and_monotone(self, values):
        sketch = QuantileSketch(quantiles=QS, exact_threshold=32)
        for value in values:
            sketch.observe(value)
        probes = [0.01, 0.25, 0.5, 0.75, 0.9, 0.99]
        estimates = [sketch.quantile(q) for q in probes]
        for estimate in estimates:
            assert min(values) <= estimate <= max(values)
        for lo, hi in zip(estimates, estimates[1:]):
            assert lo <= hi + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=31,
        )
    )
    def test_small_streams_match_exact_reference(self, values):
        sketch = QuantileSketch(quantiles=QS, exact_threshold=32)
        for value in values:
            sketch.observe(value)
        ordered = sorted(values)
        for q in (0.1, 0.5, 0.9):
            assert sketch.quantile(q) == exact_quantile(ordered, q)


# -- ring-buffer time series --------------------------------------------------


class TestTimeSeries:
    def test_validates_construction(self):
        with pytest.raises(ValueError):
            TimeSeries(interval=0.0)
        with pytest.raises(ValueError):
            TimeSeries(n_buckets=0)
        with pytest.raises(ValueError):
            TimeSeries().window(0.0)

    def test_counts_and_values_in_current_window(self):
        clock = FakeClock()
        series = TimeSeries(interval=1.0, n_buckets=60, clock=clock)
        series.record(0.2)
        series.record(0.6)
        window = series.window(10.0)
        assert window.count == 2
        assert window.total == pytest.approx(0.8)
        assert window.minimum == 0.2
        assert window.maximum == 0.6
        assert window.mean == pytest.approx(0.4)

    def test_rate_is_count_over_covered_span(self):
        clock = FakeClock()
        series = TimeSeries(interval=1.0, n_buckets=60, clock=clock)
        for _ in range(30):
            series.record()
            clock.advance(1.0)
        # Recording advanced the clock after each event, so the
        # 10-bucket window ending at t=30 holds events from t=21..29
        # (the current bucket, t=30, is still empty).
        assert series.rate(10.0) == pytest.approx(9 / 10.0)
        assert series.window(60.0).count == 30

    def test_old_buckets_expire_after_clock_jump(self):
        clock = FakeClock()
        series = TimeSeries(interval=1.0, n_buckets=10, clock=clock)
        for _ in range(5):
            series.record()
        clock.advance(3600.0)  # jump far past the ring's capacity
        assert series.window(10.0).count == 0
        assert series.rate(5.0) == 0.0
        series.record()
        assert series.window(10.0).count == 1

    def test_ring_wrap_overwrites_oldest(self):
        clock = FakeClock()
        series = TimeSeries(interval=1.0, n_buckets=5, clock=clock)
        for _ in range(8):  # 8 intervals through a 5-bucket ring
            series.record()
            clock.advance(1.0)
        # Window clamps to the ring's 5 buckets: t=4..8, of which the
        # current bucket (t=8) is empty — the t=0..3 events are gone.
        assert series.window(100.0).count == 4
        assert series.capacity_seconds == 5.0

    def test_batched_record_weights_count_and_total(self):
        series = TimeSeries(interval=1.0, n_buckets=4, clock=FakeClock())
        series.record(2.0, n=10)
        window = series.window(1.0)
        assert window.count == 10
        assert window.total == pytest.approx(20.0)
        assert window.maximum == 2.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0),  # advance
                st.integers(min_value=0, max_value=5),     # events
            ),
            min_size=1, max_size=40,
        ),
        st.floats(min_value=1.0, max_value=30.0),  # window seconds
    )
    def test_window_matches_timestamped_reference(self, schedule, seconds):
        """Brute-force model: keep every (timestamp, n) and re-count.

        The ring counts whole buckets, so the reference keeps events
        whose *bucket index* falls in the last ``ceil(seconds)``
        indices — the documented window semantics.
        """
        clock = FakeClock()
        series = TimeSeries(interval=1.0, n_buckets=64, clock=clock)
        events: list[tuple[int, int]] = []  # (bucket index, n)
        for advance, n_events in schedule:
            clock.advance(advance)
            if n_events:
                series.record(n=n_events)
                events.append((int(clock.now() // 1.0), n_events))
        span = min(64, max(1, math.ceil(seconds)))
        current = int(clock.now() // 1.0)
        expected = sum(
            n for index, n in events
            if current - span + 1 <= index <= current
        )
        window = series.window(seconds)
        assert window.count == expected
        assert window.rate == pytest.approx(expected / (span * 1.0))


# -- telemetry hub ------------------------------------------------------------


class TestTelemetry:
    def test_record_and_observe_create_on_use(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, interval=1.0)
        telemetry.record("fetch.outcomes")
        telemetry.observe("serve.latency", 0.05)
        assert telemetry.series_names == [
            "fetch.outcomes", "serve.latency",
        ]
        assert telemetry.sketch_names == ["serve.latency"]
        assert telemetry.rate("fetch.outcomes", 10.0) > 0
        assert telemetry.quantile("serve.latency", 0.5) == 0.05

    def test_unknown_names_read_empty(self):
        telemetry = Telemetry(clock=FakeClock())
        assert telemetry.window("nope", 10.0).count == 0
        assert telemetry.rate("nope", 10.0) == 0.0
        assert telemetry.quantile("nope", 0.5) == 0.0

    def test_snapshot_shape(self):
        telemetry = Telemetry(clock=FakeClock(), interval=1.0)
        telemetry.observe("serve.latency", 0.2)
        snap = telemetry.snapshot(windows=(60.0,))
        assert snap["series"]["serve.latency"]["60s"]["count"] == 1
        assert snap["sketches"]["serve.latency"]["count"] == 1

    def test_null_telemetry_is_inert_but_truthy(self):
        assert NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.record("x")
        NULL_TELEMETRY.observe("x", 1.0)
        assert NULL_TELEMETRY.rate("x", 10.0) == 0.0
        assert NULL_TELEMETRY.quantile("x", 0.5) == 0.0
        assert NULL_TELEMETRY.window("x", 5.0).count == 0
        assert NULL_TELEMETRY.snapshot() == {
            "series": {}, "sketches": {},
        }
        assert NULL_TELEMETRY.series("x").rate(1.0) == 0.0
        assert NULL_TELEMETRY.sketch("x").summary() == {}
