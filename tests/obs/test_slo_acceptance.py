"""Chaos acceptance: faults page SLOs and turn health critical.

The PR's headline guarantee, pinned end-to-end through the real CLI:
``repro health`` under the deterministic ``lossy`` fault profile must
emit ``slo_breach`` flight-recorder events and exit ``critical`` (2),
while the identical fault-free run stays ``ok`` (0) with every error
budget intact.  Everything is seeded — same corpus, same fault rolls,
same load — so the verdicts are exact, not statistical.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.events import read_events

DOCS = ["--docs", "200", "--seed", "7"]
LOAD = ["--queries", "30", "--clients", "2"]


@pytest.mark.chaos
class TestHealthUnderFaults:
    def test_fault_free_run_is_ok(self, capsys):
        code = main(["health", *DOCS, *LOAD])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall: ok" in out
        assert "budget=100%" in out

    def test_lossy_run_is_critical_with_breaches(
        self, tmp_path, capsys
    ):
        events_file = tmp_path / "events.jsonl"
        code = main([
            "health", *DOCS, *LOAD,
            "--fault-profile", "lossy",
            "--record", str(events_file),
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "overall: critical" in out
        assert "page" in out

        breaches = [
            event for event in read_events(events_file)
            if event.event_type == "slo_breach"
        ]
        assert breaches, "lossy faults must page at least one SLO"
        breached = {event.payload["slo"] for event in breaches}
        # The lossy profile (15% hard-dead hosts) torches the 3%
        # fetch-availability budget; everything it pages must
        # arrive with both windows burning and the budget gone.
        assert "fetch-availability" in breached
        for event in breaches:
            assert event.payload["window"] == "fast+slow"
            assert event.payload["burn_rate"] >= 1.0
            assert event.payload["budget_remaining"] < 1.0

    def test_lossy_verdict_is_deterministic(self, capsys):
        first = main([
            "health", *DOCS, *LOAD, "--fault-profile", "lossy",
            "--json",
        ])
        out_first = capsys.readouterr().out
        second = main([
            "health", *DOCS, *LOAD, "--fault-profile", "lossy",
            "--json",
        ])
        out_second = capsys.readouterr().out
        assert first == second == 2
        slos_first = {
            s["name"]: (s["severity"], s["breaching"])
            for s in json.loads(out_first)["slos"]
        }
        slos_second = {
            s["name"]: (s["severity"], s["breaching"])
            for s in json.loads(out_second)["slos"]
        }
        assert slos_first == slos_second
        assert slos_first["fetch-availability"] == ("page", True)

    def test_json_rollup_shape(self, capsys):
        code = main(["health", *DOCS, *LOAD, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        components = {
            c["component"]: c["status"] for c in payload["components"]
        }
        assert components.get("ingest") == "ok"
        assert components.get("serve") == "ok"
        slos = {s["name"]: s for s in payload["slos"]}
        assert set(slos) == {
            "fetch-availability", "fetch-dead-letters",
            "serve-availability", "serve-degraded-reads",
            "serve-latency-p99", "stream-freshness",
        }
        for status in slos.values():
            assert status["budget_remaining"] >= 0.9
