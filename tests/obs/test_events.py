"""Flight-recorder event tests: schema, ring buffer, sink, null log."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import FakeClock
from repro.obs.events import (
    EVENT_TYPES,
    NULL_EVENT_LOG,
    SCHEMA_VERSION,
    Event,
    EventLog,
    NullEventLog,
    new_run_id,
    read_events,
    validate_jsonl,
    validate_record,
)

#: A valid example payload per event type, used to exercise every
#: schema.  Keys must cover EVENT_TYPES[...]; extras are allowed.
EXAMPLE_PAYLOADS: dict[str, dict] = {
    "run_started": {"command": "demo"},
    "page_crawled": {"url": "http://x/a.html", "depth": 2, "via": "http://x/"},
    "doc_indexed": {"doc_id": "doc-1", "url": "http://x/a.html"},
    "doc_deduped": {"doc_id": "doc-1", "reason": "exact"},
    "near_duplicate": {
        "key": "doc-2",
        "duplicate_of": "doc-1",
        "similarity": 0.93,
    },
    "search_executed": {"query": "merger acquisition", "n_results": 17},
    "model_trained": {
        "driver_id": "mergers",
        "n_noisy_positive": 120,
        "n_noisy_kept": 90,
        "n_negative": 500,
        "n_features": 812,
        "n_iterations": 2,
    },
    "snippet_scored": {
        "snippet_id": "doc-1#3",
        "doc_id": "doc-1",
        "driver_id": "mergers",
        "score": 0.97,
    },
    "trigger_classified": {
        "snippet_id": "doc-1#3",
        "doc_id": "doc-1",
        "driver_id": "mergers",
        "score": 0.97,
        "rank": 1,
        "features": [["merger", 2.1], ["acquire", 1.3]],
    },
    "alert_emitted": {
        "alert_id": "ab12cd34ef56ab78",
        "cycle": 1,
        "driver_id": "mergers",
        "snippet_id": "doc-1#3",
        "doc_id": "doc-1",
        "score": 0.97,
    },
    "company_ranked": {"company": "Acme Corp", "mrr": 0.42, "position": 1},
    "drift_warning": {
        "monitor": "class_balance",
        "value": 0.4,
        "threshold": 0.25,
    },
    "fetch_retry": {
        "url": "http://x/a.html",
        "attempt": 2,
        "wait_ticks": 2.4,
        "reason": "transient",
    },
    "breaker_open": {"host": "x.example.com", "failures": 5},
    "breaker_close": {"host": "x.example.com"},
    "fetch_dead_letter": {
        "url": "http://x/a.html",
        "reason": "exhausted:transient",
        "attempts": 4,
    },
    "query_served": {
        "client_id": "analyst-7",
        "query": '"agreed to acquire"',
        "status": "ok",
    },
    "query_rejected": {"client_id": "analyst-7", "reason": "queue_full"},
    "snapshot_swapped": {"generation": 2, "n_docs": 640, "n_shards": 4},
    "subscription_polled": {"subscription_id": "sub-0001", "n_alerts": 3},
    "stream_batch_begin": {"cycle": 3, "n_docs": 20},
    "stream_alert": {
        "alert_id": "ab12cd34ef56ab78",
        "cycle": 3,
        "driver_id": "mergers",
        "snippet_id": "doc-1000001#2",
        "doc_id": "doc-1000001",
        "score": 0.96,
    },
    "stream_batch_commit": {
        "cycle": 3,
        "watermark": 93,
        "generation": 4,
        "n_alerts": 2,
    },
    "checkpoint_written": {
        "checkpoint_id": 3,
        "cycle": 3,
        "watermark": 93,
        "wal_seq": 41,
    },
    "stream_resumed": {
        "checkpoint_id": 3,
        "cycle": 3,
        "wal_records_replayed": 7,
    },
    "late_arrival": {
        "doc_id": "doc-1000042",
        "published_day": 88,
        "watermark": 93,
    },
    "shard_merged": {"shard": 1, "docs": 52, "tokens": 5804, "terms": 1311},
    "replica_down": {"shard": 0, "replica": "shard0/r1"},
    "replica_restored": {"shard": 0, "replica": "shard0/r1", "lag": 2},
    "query_hedged": {
        "query": "merger acquisition",
        "shard": 1,
        "primary": "shard1/r0",
        "hedge": "shard1/r2",
    },
    "degraded_read": {"source": "query_cache"},
    "query_candidate_evaluated": {
        "driver_id": "funding_rounds",
        "query": '"series a funding"',
        "source": "template",
        "coverage": 12,
        "precision": 0.75,
        "cost": 16,
    },
    "portfolio_selected": {
        "driver_id": "funding_rounds",
        "budget": 160,
        "n_candidates": 120,
        "n_selected": 6,
        "total_cost": 41,
        "precision_at_budget": 0.7073,
    },
    "slo_breach": {
        "slo": "fetch-availability",
        "objective": "availability",
        "window": "fast+slow",
        "burn_rate": 4.94,
        "budget_remaining": 0.0,
    },
    "health_transition": {
        "status": "critical",
        "previous": "ok",
        "reasons": ["fetch: slo fetch-availability page"],
    },
}


def test_every_event_type_has_an_example():
    assert set(EXAMPLE_PAYLOADS) == set(EVENT_TYPES)


class TestRoundTrip:
    @pytest.mark.parametrize("event_type", sorted(EVENT_TYPES))
    def test_emit_to_json_from_json(self, event_type):
        log = EventLog(run_id="testrun", clock=FakeClock(1.5))
        emitted = log.emit(
            event_type,
            lineage_id="doc-1",
            **EXAMPLE_PAYLOADS[event_type],
        )
        restored = Event.from_json(emitted.to_json())
        # JSON round-trips tuples as lists; normalize via json for the
        # comparison so the payloads compare structurally.
        assert restored.event_type == emitted.event_type
        assert restored.run_id == emitted.run_id
        assert restored.seq == emitted.seq
        assert restored.ts == emitted.ts
        assert restored.lineage_id == emitted.lineage_id
        assert restored.schema_version == SCHEMA_VERSION
        assert json.loads(json.dumps(restored.payload)) == json.loads(
            json.dumps(emitted.payload)
        )

    @pytest.mark.parametrize("event_type", sorted(EVENT_TYPES))
    def test_emitted_record_validates(self, event_type):
        log = EventLog(run_id="testrun")
        event = log.emit(event_type, **EXAMPLE_PAYLOADS[event_type])
        assert validate_record(event.to_dict()) == []


class TestEmitValidation:
    def test_unknown_type_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event_type"):
            log.emit("page_teleported", url="http://x/")

    def test_missing_payload_field_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="missing payload"):
            log.emit("page_crawled", url="http://x/")  # no depth

    def test_extra_payload_fields_allowed(self):
        log = EventLog()
        event = log.emit(
            "doc_indexed", doc_id="d", url="u", title="extra is fine"
        )
        assert event.payload["title"] == "extra is fine"

    def test_seq_and_clock(self):
        clock = FakeClock()
        log = EventLog(run_id="r", clock=clock)
        first = log.emit("run_started", command="demo")
        clock.advance(2.0)
        second = log.emit("run_started", command="demo")
        assert (first.seq, second.seq) == (0, 1)
        assert second.ts - first.ts == 2.0


class TestRingBuffer:
    def test_ring_drops_oldest_but_counts_survive(self):
        log = EventLog(capacity=3)
        for depth in range(10):
            log.emit("page_crawled", url=f"http://x/{depth}", depth=depth)
        assert len(log) == 3
        assert log.total_emitted == 10
        assert log.counts() == {"page_crawled": 10}
        assert [e.payload["depth"] for e in log.events()] == [7, 8, 9]

    def test_events_filter_by_type(self):
        log = EventLog()
        log.emit("run_started", command="demo")
        log.emit("doc_indexed", doc_id="d", url="u")
        assert len(log.events("doc_indexed")) == 1
        assert len(log.events()) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestFileSink:
    def test_sink_receives_all_events_despite_ring_wrap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(capacity=2, sink=path, run_id="r") as log:
            for depth in range(5):
                log.emit(
                    "page_crawled", url=f"http://x/{depth}", depth=depth
                )
        events = read_events(path)
        assert [e.payload["depth"] for e in events] == [0, 1, 2, 3, 4]
        assert all(e.run_id == "r" for e in events)

    def test_stringio_sink(self):
        buffer = io.StringIO()
        log = EventLog(sink=buffer)
        log.emit("run_started", command="demo")
        log.close()
        record = json.loads(buffer.getvalue())
        assert record["event_type"] == "run_started"
        assert validate_record(record) == []

    def test_written_log_passes_validate_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(sink=path) as log:
            for event_type, payload in EXAMPLE_PAYLOADS.items():
                log.emit(event_type, **payload)
        lines = path.read_text().splitlines()
        assert len(lines) == len(EVENT_TYPES)
        assert validate_jsonl(lines) == []


class TestValidation:
    def _record(self, **overrides):
        record = EventLog(run_id="r").emit(
            "doc_indexed", doc_id="d", url="u"
        ).to_dict()
        record.update(overrides)
        return record

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) == ["record is not a JSON object"]

    def test_missing_envelope_field(self):
        record = self._record()
        del record["run_id"]
        (error,) = validate_record(record)
        assert "run_id" in error

    def test_wrong_schema_version(self):
        record = self._record(schema_version=99)
        assert any(
            "schema_version" in e for e in validate_record(record)
        )

    def test_unknown_event_type(self):
        record = self._record(event_type="nope")
        assert any("unknown" in e for e in validate_record(record))

    def test_missing_payload_field(self):
        record = self._record(payload={"doc_id": "d"})
        assert any("url" in e for e in validate_record(record))

    def test_validate_jsonl_reports_line_numbers(self):
        good = self._record()
        lines = [
            json.dumps(good),
            "not json at all {",
            json.dumps({**good, "event_type": "nope"}),
            "",  # blanks are skipped
        ]
        problems = validate_jsonl(lines)
        assert [lineno for lineno, _ in problems] == [2, 3]

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError):
            Event.from_dict({"event_type": "doc_indexed"})


class TestNullEventLog:
    def test_disabled_and_empty(self):
        assert NULL_EVENT_LOG.enabled is False
        assert len(NULL_EVENT_LOG) == 0
        assert list(NULL_EVENT_LOG) == []
        assert NULL_EVENT_LOG.counts() == {}
        assert NULL_EVENT_LOG.total_emitted == 0

    def test_emit_adds_zero_entries(self):
        log = NullEventLog()
        for event_type, payload in EXAMPLE_PAYLOADS.items():
            assert log.emit(event_type, **payload) is None
        assert len(log) == 0
        assert log.events() == []
        assert log.counts() == {}

    def test_emit_skips_validation_entirely(self):
        # The null path must stay a bare no-op: no schema checks.
        assert NULL_EVENT_LOG.emit("not_a_type", junk=1) is None

    def test_lifecycle_methods_are_noops(self):
        log = NullEventLog()
        log.flush()
        log.close()


def test_empty_event_log_is_truthy():
    # Regression: `event_log or NULL_EVENT_LOG` is the wiring idiom in
    # every pipeline constructor; a fresh (empty) log must not be
    # replaced by the null log just because len() == 0.
    assert bool(EventLog()) is True
    assert bool(NullEventLog()) is True
    assert (EventLog() or NULL_EVENT_LOG).enabled is True


def test_new_run_ids_are_distinct():
    ids = {new_run_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(i) == 12 for i in ids)
