"""Tracer unit tests: span nesting, timing, and the null tracer.

Every timing here is *exact* — the tracer runs on a FakeClock that only
moves when the test says so.  No sleeps, no tolerances.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    FakeClock,
    MonotonicClock,
    NullTracer,
    Tracer,
)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpans:
    def test_single_span_duration_exact(self, tracer, clock):
        with tracer.span("stage"):
            clock.advance(2.5)
        (span,) = tracer.roots
        assert span.name == "stage"
        assert span.duration == 2.5

    def test_open_span_reports_zero_duration(self, tracer, clock):
        with tracer.span("stage") as span:
            clock.advance(1.0)
            assert span.duration == 0.0
        assert span.duration == 1.0

    def test_nesting_builds_a_tree(self, tracer, clock):
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner.a"):
                clock.advance(2.0)
            with tracer.span("inner.b"):
                clock.advance(3.0)
        (outer,) = tracer.roots
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert outer.duration == 6.0
        assert outer.children[0].duration == 2.0
        assert outer.children[1].duration == 3.0

    def test_deep_nesting(self, tracer, clock):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    clock.advance(1.0)
        (a,) = tracer.roots
        (b,) = a.children
        (c,) = b.children
        assert (a.duration, b.duration, c.duration) == (1.0, 1.0, 1.0)

    def test_sequential_roots(self, tracer, clock):
        with tracer.span("first"):
            clock.advance(1.0)
        with tracer.span("second"):
            clock.advance(2.0)
        assert [span.name for span in tracer.roots] == [
            "first",
            "second",
        ]

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_span_closed_on_exception(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance(4.0)
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.duration == 4.0
        assert tracer.current is None

    def test_items_and_throughput(self, tracer, clock):
        with tracer.span("stage") as span:
            clock.advance(2.0)
            span.add_items(10)
        assert span.items == 10
        assert span.throughput == 5.0

    def test_add_items_goes_to_innermost(self, tracer, clock):
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add_items(3)
        (outer,) = tracer.roots
        assert outer.items == 0
        assert outer.children[0].items == 3

    def test_zero_duration_throughput_is_zero(self, tracer):
        with tracer.span("instant") as span:
            span.add_items(5)
        assert span.throughput == 0.0

    def test_span_to_dict(self, tracer, clock):
        with tracer.span("outer") as span:
            clock.advance(2.0)
            span.add_items(4)
            with tracer.span("inner"):
                clock.advance(1.0)
        record = span.to_dict()
        assert record["name"] == "outer"
        assert record["seconds"] == 3.0
        assert record["items"] == 4
        assert record["children"][0]["name"] == "inner"
        assert record["children"][0]["seconds"] == 1.0


class TestMetricsViaTracer:
    def test_count_and_observe_reach_registry(self, tracer):
        tracer.count("pages", 3)
        tracer.count("pages")
        tracer.observe("latency", 0.5)
        assert tracer.registry.counter("pages").value == 4
        assert tracer.registry.histogram("latency").values == [0.5]

    def test_timed_records_exact_duration(self, tracer, clock):
        with tracer.timed("op_seconds"):
            clock.advance(0.25)
        with tracer.timed("op_seconds"):
            clock.advance(0.75)
        histogram = tracer.registry.histogram("op_seconds")
        assert histogram.values == [0.25, 0.75]
        assert histogram.total == 1.0

    def test_timed_creates_no_span(self, tracer, clock):
        with tracer.timed("op_seconds"):
            clock.advance(1.0)
        assert tracer.roots == []


class TestFakeClock:
    def test_starts_at_zero_by_default(self):
        assert FakeClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = FakeClock(start=10.0)
        clock.advance(1.5)
        clock.tick(0.5)
        assert clock.now() == 12.0

    def test_rejects_backwards_motion(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


class TestNullTracer:
    def test_shared_instance_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_span_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("stage") as span:
            span.add_items(5)
            tracer.count("n", 3)
            tracer.observe("h", 1.0)
            with tracer.timed("t"):
                pass
        assert tracer.roots == []
        assert tracer.current is None
        assert span.duration == 0.0

    def test_span_context_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
