"""Full-pipeline end-to-end test: the README quickstart, verified."""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.corpus.generator import CorpusConfig


def test_quickstart_pipeline():
    web = build_web(250, CorpusConfig(seed=99))
    etap = Etap.from_web(
        web,
        config=EtapConfig(
            top_k_per_query=40, negative_sample_size=400
        ),
    )

    report = etap.gather()
    assert report.documents_stored == len(web.documents)

    summaries = etap.train()
    assert len(summaries) == 3
    for summary in summaries.values():
        assert summary.n_noisy_kept > 0

    events = etap.extract_trigger_events()
    assert any(events.values())

    leads = etap.company_report(events)
    assert leads
    # Every reported company traces back to at least one trigger event.
    companies_in_events = {
        company
        for driver_events in events.values()
        for event in driver_events
        for company in event.companies
    }
    for lead in leads:
        assert lead.company in companies_in_events
