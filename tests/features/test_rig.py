"""Entropy / conditional entropy / RIG tests (Equation 1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.rig import (
    conditional_entropy,
    entropy,
    information_gain,
    joint_from_pairs,
    marginal_y,
    relative_information_gain,
)


class TestEntropy:
    def test_uniform_two_outcomes_is_one_bit(self):
        assert entropy({"a": 5, "b": 5}) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy({"a": 10}) == 0.0

    def test_empty_is_zero(self):
        assert entropy({}) == 0.0

    def test_uniform_four_outcomes_is_two_bits(self):
        assert entropy({k: 1 for k in "abcd"}) == pytest.approx(2.0)

    def test_known_biased_coin(self):
        expected = -(0.9 * math.log2(0.9) + 0.1 * math.log2(0.1))
        assert entropy({"h": 9, "t": 1}) == pytest.approx(expected)

    def test_zero_counts_ignored(self):
        assert entropy({"a": 4, "b": 0}) == 0.0


class TestJointConstruction:
    def test_joint_from_pairs(self):
        joint = joint_from_pairs([("x", 1), ("x", 0), ("y", 1)])
        assert joint == {"x": {1: 1.0, 0: 1.0}, "y": {1: 1.0}}

    def test_marginal_y(self):
        joint = joint_from_pairs([("x", 1), ("x", 0), ("y", 1)])
        assert marginal_y(joint) == {1: 2.0, 0: 1.0}


class TestConditionalEntropy:
    def test_perfect_predictor_gives_zero(self):
        joint = joint_from_pairs([("a", 1)] * 5 + [("b", 0)] * 5)
        assert conditional_entropy(joint) == pytest.approx(0.0)

    def test_independent_x_keeps_full_entropy(self):
        pairs = (
            [("a", 1)] * 5 + [("a", 0)] * 5
            + [("b", 1)] * 5 + [("b", 0)] * 5
        )
        joint = joint_from_pairs(pairs)
        assert conditional_entropy(joint) == pytest.approx(1.0)

    def test_smoothing_raises_entropy_of_sparse_cells(self):
        joint = joint_from_pairs([("a", 1), ("b", 0)])
        assert conditional_entropy(joint, smoothing=0.0) == 0.0
        assert conditional_entropy(joint, smoothing=1.0) > 0.0

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            conditional_entropy({}, smoothing=-1)


class TestRig:
    def test_perfect_predictor_rig_is_one(self):
        joint = joint_from_pairs([("a", 1)] * 5 + [("b", 0)] * 5)
        assert relative_information_gain(joint) == pytest.approx(1.0)

    def test_independent_rig_is_zero(self):
        pairs = (
            [("a", 1)] * 5 + [("a", 0)] * 5
            + [("b", 1)] * 5 + [("b", 0)] * 5
        )
        assert relative_information_gain(
            joint_from_pairs(pairs)
        ) == pytest.approx(0.0)

    def test_degenerate_y_gives_zero(self):
        joint = joint_from_pairs([("a", 1), ("b", 1)])
        assert relative_information_gain(joint) == 0.0

    def test_smoothing_never_produces_negative(self):
        pairs = [("a", 1), ("a", 0), ("b", 1)]
        assert relative_information_gain(
            joint_from_pairs(pairs), smoothing=5.0
        ) >= 0.0

    def test_information_gain_matches_rig_times_hy(self):
        pairs = [("a", 1)] * 6 + [("a", 0)] * 2 + [("b", 0)] * 8
        joint = joint_from_pairs(pairs)
        h_y = entropy(marginal_y(joint))
        assert information_gain(joint) == pytest.approx(
            relative_information_gain(joint) * h_y
        )


@st.composite
def joint_tables(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    pairs = [
        (draw(st.sampled_from("abcd")), draw(st.sampled_from([0, 1])))
        for _ in range(n)
    ]
    return joint_from_pairs(pairs)


@given(joint_tables())
def test_rig_bounded_zero_one(joint):
    value = relative_information_gain(joint)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(joint_tables(), st.floats(min_value=0.0, max_value=3.0))
def test_smoothing_monotonically_shrinks_gain(joint, smoothing):
    base = relative_information_gain(joint, smoothing=0.0)
    smoothed = relative_information_gain(joint, smoothing=smoothing)
    assert smoothed <= base + 1e-9
