"""Feature-abstraction tests: PA/IV pairs, policy, token abstraction."""

from __future__ import annotations

import pytest

from repro.features.abstraction import (
    AbstractionAnalyzer,
    AbstractionPolicy,
    abstract_tokens,
    iv_pairs,
    pa_pairs,
)
from repro.text.annotator import Annotator
from repro.text.ner import ENTITY_CATEGORIES, NerConfig


@pytest.fixture(scope="module")
def full_annotator():
    return Annotator(NerConfig(gazetteer_coverage=1.0))


@pytest.fixture(scope="module")
def labeled_corpus(full_annotator):
    positives = [
        "Acme Inc acquired Globex Corp for $5 billion.",
        "Initech Ltd agreed to acquire Hooli Systems.",
        "Stark Group bought Wayne Industries in January.",
    ]
    negatives = [
        "A guide to hiking trails in Tokyo.",
        "The weather in Paris stayed mild.",
        "Read reviews about gardening tips.",
    ]
    texts = [full_annotator.annotate(t) for t in positives + negatives]
    labels = [1] * len(positives) + [0] * len(negatives)
    return texts, labels


class TestObservationPairs:
    def test_pa_one_observation_per_text(self, labeled_corpus):
        texts, labels = labeled_corpus
        pairs = pa_pairs(texts, labels, "ORG")
        assert len(pairs) == len(texts)

    def test_pa_values_present_absent(self, labeled_corpus):
        texts, labels = labeled_corpus
        values = {x for x, _ in pa_pairs(texts, labels, "ORG")}
        assert values <= {"present", "absent"}

    def test_iv_emits_instances(self, labeled_corpus):
        texts, labels = labeled_corpus
        pairs = iv_pairs(texts, labels, "ORG")
        instances = {x for x, _ in pairs}
        assert "acme inc" in instances

    def test_iv_skips_texts_without_category(self, labeled_corpus):
        # IV measures instance information among occurrences only;
        # absence is PA's job (see the iv_pairs docstring).
        texts, labels = labeled_corpus
        pairs = iv_pairs(texts, labels, "ORG")
        assert all(label == 1 for _, label in pairs)


class TestAnalyzer:
    def test_org_prefers_pa_on_shared_vocabulary(self, full_annotator):
        # Same companies appear in both classes: the instance value
        # carries nothing, presence separates perfectly.
        positives = [
            f"{org} acquired a rival." for org in
            ("Acme Inc", "Globex Corp", "Initech Ltd")
        ] * 3
        negatives = ["the weather stayed mild in the hills."] * 9
        texts = [
            full_annotator.annotate(t) for t in positives + negatives
        ]
        labels = [1] * len(positives) + [0] * len(negatives)
        comparison = AbstractionAnalyzer(smoothing=0.5).compare(
            texts, labels, "ORG"
        )
        assert comparison.prefer_abstraction

    def test_verbs_prefer_iv(self, full_annotator):
        # Every text has verbs (PA useless); WHICH verb separates.
        positives = ["they acquired the firm."] * 6
        negatives = ["they hiked the trail."] * 6
        texts = [
            full_annotator.annotate(t) for t in positives + negatives
        ]
        labels = [1] * 6 + [0] * 6
        comparison = AbstractionAnalyzer(smoothing=0.5).compare(
            texts, labels, "vb"
        )
        assert not comparison.prefer_abstraction
        assert comparison.rig_iv > comparison.rig_pa

    def test_compare_all_covers_entities_and_pos(self, labeled_corpus):
        texts, labels = labeled_corpus
        comparisons = AbstractionAnalyzer().compare_all(texts, labels)
        categories = {c.category for c in comparisons}
        assert set(ENTITY_CATEGORIES) <= categories
        assert {"vb", "nn", "jj"} <= categories

    def test_derive_policy_only_abstracts_entities(self, labeled_corpus):
        texts, labels = labeled_corpus
        policy = AbstractionAnalyzer().derive_policy(texts, labels)
        assert policy.abstract_categories <= set(ENTITY_CATEGORIES)


class TestPolicy:
    def test_paper_default_abstracts_all_entities(self):
        policy = AbstractionPolicy.paper_default()
        assert policy.abstract_categories == frozenset(ENTITY_CATEGORIES)

    def test_none_policy(self):
        assert AbstractionPolicy.none().abstract_categories == frozenset()

    def test_placeholder_format(self):
        assert AbstractionPolicy().placeholder("ORG") == "__ORG__"


class TestAbstractTokens:
    def test_entities_become_placeholders(self, full_annotator):
        annotated = full_annotator.annotate(
            "Acme Inc acquired Globex Corp."
        )
        tokens = abstract_tokens(
            annotated, AbstractionPolicy.paper_default()
        )
        assert tokens == ["__ORG__", "acquir", "__ORG__"]

    def test_multi_token_entity_single_placeholder(self, full_annotator):
        annotated = full_annotator.annotate(
            "Globex Data Systems expanded rapidly."
        )
        tokens = abstract_tokens(
            annotated, AbstractionPolicy.paper_default()
        )
        assert tokens.count("__ORG__") == 1

    def test_none_policy_keeps_stemmed_words(self, full_annotator):
        annotated = full_annotator.annotate("Acme Inc acquired assets.")
        tokens = abstract_tokens(annotated, AbstractionPolicy.none())
        assert "acm" in tokens  # Porter stem of "acme"
        assert "__ORG__" not in tokens

    def test_stopwords_dropped(self, full_annotator):
        annotated = full_annotator.annotate("the firm was in trouble")
        tokens = abstract_tokens(
            annotated, AbstractionPolicy.paper_default()
        )
        assert "the" not in tokens
        assert "was" not in tokens

    def test_punctuation_dropped(self, full_annotator):
        annotated = full_annotator.annotate("Profits, however, fell.")
        tokens = abstract_tokens(
            annotated, AbstractionPolicy.paper_default()
        )
        assert "," not in tokens
        assert "." not in tokens

    def test_words_are_stemmed_lowercase(self, full_annotator):
        annotated = full_annotator.annotate("Profits Growing Strongly")
        tokens = abstract_tokens(
            annotated, AbstractionPolicy.paper_default()
        )
        assert all(t == t.lower() for t in tokens)
        assert "profit" in tokens
