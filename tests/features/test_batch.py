"""Equivalence tests: batched CSR construction vs the per-document path.

``batch_transform`` replaced a per-row ``Counter`` loop on the training
hot path; these tests pin the claim that it is *numerically identical*
to the straightforward implementation — same shape, same counts, same
cells — across random documents, binary mode, and n-gram expansion.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Callable, Sequence

import numpy as np
import pytest
from hypothesis import given, strategies as st
from scipy import sparse

from repro.features.batch import batch_transform, joint_counts_from_matrix
from repro.features.vectorizer import Vectorizer, VectorizerConfig

TOKENS = ["acquire", "ceo", "revenue", "__COMPANY__", "plant", "oov"]
VOCABULARY = {
    token: index for index, token in enumerate(sorted(TOKENS[:-1]))
}

documents_strategy = st.lists(
    st.lists(st.sampled_from(TOKENS), max_size=12), max_size=10
)


def reference_transform(
    documents: Sequence[Sequence[str]],
    vocabulary: dict[str, int],
    *,
    binary: bool = False,
    expand: Callable[[Sequence[str]], Sequence[str]] | None = None,
) -> sparse.csr_matrix:
    """The pre-batching implementation: one Counter per document."""
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for row, tokens in enumerate(documents):
        if expand is not None:
            tokens = expand(tokens)
        counts = Counter(
            token for token in tokens if token in vocabulary
        )
        for token, count in counts.items():
            rows.append(row)
            cols.append(vocabulary[token])
            data.append(1.0 if binary else float(count))
    return sparse.csr_matrix(
        (data, (rows, cols)),
        shape=(len(documents), len(vocabulary)),
        dtype=np.float64,
    )


@given(documents_strategy, st.booleans())
def test_batch_transform_matches_per_document_path(documents, binary):
    batched = batch_transform(documents, VOCABULARY, binary=binary)
    reference = reference_transform(documents, VOCABULARY, binary=binary)
    assert batched.shape == reference.shape
    assert batched.dtype == reference.dtype
    np.testing.assert_array_equal(
        batched.toarray(), reference.toarray()
    )


@given(documents_strategy, st.booleans())
def test_vectorizer_transform_matches_per_document_path(documents, binary):
    config = VectorizerConfig(binary=binary, ngram_range=(1, 2))
    vectorizer = Vectorizer(config).fit(documents)
    batched = vectorizer.transform(documents)
    reference = reference_transform(
        documents,
        vectorizer.vocabulary,
        binary=binary,
        expand=vectorizer._expand,
    )
    np.testing.assert_array_equal(
        batched.toarray(), reference.toarray()
    )


def test_empty_inputs():
    no_docs = batch_transform([], VOCABULARY)
    assert no_docs.shape == (0, len(VOCABULARY))
    empty_doc = batch_transform([[]], VOCABULARY)
    assert empty_doc.shape == (1, len(VOCABULARY))
    assert empty_doc.nnz == 0
    no_vocab = batch_transform([["acquire"]], {})
    assert no_vocab.shape == (1, 0)


def test_unknown_tokens_are_skipped():
    matrix = batch_transform([["oov", "acquire", "oov"]], VOCABULARY)
    assert matrix.nnz == 1
    assert matrix[0, VOCABULARY["acquire"]] == 1.0


def test_fitted_vocabulary_is_interned():
    vectorizer = Vectorizer().fit([["acquire", "ceo"], ["ceo"]])
    assert all(
        name is sys.intern(name) for name in vectorizer.vocabulary
    )


@given(
    st.lists(st.lists(st.sampled_from(TOKENS), max_size=8), max_size=8)
)
def test_joint_counts_match_direct_counting(documents):
    labels = [row % 2 for row in range(len(documents))]
    matrix = batch_transform(documents, VOCABULARY, binary=True)
    names = sorted(VOCABULARY, key=VOCABULARY.__getitem__)
    joint = joint_counts_from_matrix(matrix, labels, names)
    expected: dict[str, dict[int, float]] = {}
    for tokens, label in zip(documents, labels):
        for token in set(tokens):
            if token not in VOCABULARY:
                continue
            counts = expected.setdefault(token, {})
            counts[label] = counts.get(label, 0.0) + 1.0
    assert joint == expected


def test_joint_counts_validates_alignment():
    matrix = batch_transform([["acquire"]], VOCABULARY)
    names = sorted(VOCABULARY, key=VOCABULARY.__getitem__)
    with pytest.raises(ValueError):
        joint_counts_from_matrix(matrix, [0, 1], names)
    with pytest.raises(ValueError):
        joint_counts_from_matrix(matrix, [0], names[:-1])


class TestCountsFromTokenIds:
    """The flat-stream vectorizer shard workers use must agree with
    ``batch_transform`` over the equivalent string token lists."""

    @given(documents_strategy)
    def test_matches_batch_transform(self, documents):
        ids = [
            [VOCABULARY[t] for t in tokens if t in VOCABULARY]
            for tokens in documents
        ]
        token_ids = np.asarray(
            [i for doc in ids for i in doc], dtype=np.int32
        )
        doc_ptr = np.concatenate(
            (
                [0],
                np.cumsum(
                    [len(doc) for doc in ids], dtype=np.int64
                ),
            )
        ).astype(np.int64)
        from repro.features.batch import counts_from_token_ids

        flat = counts_from_token_ids(
            token_ids, doc_ptr, len(VOCABULARY)
        )
        reference = batch_transform(documents, VOCABULARY)
        assert flat.shape == reference.shape
        assert (flat != reference).nnz == 0

    def test_empty_stream(self):
        from repro.features.batch import counts_from_token_ids

        matrix = counts_from_token_ids(
            np.empty(0, dtype=np.int32),
            np.zeros(1, dtype=np.int64),
            4,
        )
        assert matrix.shape == (0, 4)
        assert matrix.nnz == 0
