"""Feature-selection scorer tests: chi2, IG, MI."""

from __future__ import annotations

import pytest

from repro.features.selection import (
    chi_square_scores,
    information_gain_scores,
    mutual_information_scores,
    select_top_k,
)

DOCS = [
    ["acquire", "deal", "company"],
    ["acquire", "merger", "company"],
    ["acquire", "deal"],
    ["weather", "rain", "company"],
    ["weather", "sun"],
    ["garden", "weather"],
]
LABELS = [1, 1, 1, 0, 0, 0]


class TestChiSquare:
    def test_discriminative_feature_ranks_first(self):
        scores = chi_square_scores(DOCS, LABELS)
        top_features = [s.feature for s in scores[:2]]
        assert "acquire" in top_features
        assert "weather" in top_features

    def test_uninformative_feature_scores_low(self):
        scores = {s.feature: s.score for s in chi_square_scores(
            DOCS, LABELS
        )}
        assert scores["company"] < scores["acquire"]

    def test_perfect_feature_statistic_value(self):
        # 3/3 positive presence, 0/3 negative: chi2 = N = 6.
        scores = {s.feature: s.score for s in chi_square_scores(
            DOCS, LABELS
        )}
        assert scores["acquire"] == pytest.approx(6.0)

    def test_empty_corpus(self):
        assert chi_square_scores([], []) == []


class TestInformationGain:
    def test_perfect_feature_gains_full_entropy(self):
        scores = {s.feature: s.score for s in information_gain_scores(
            DOCS, LABELS
        )}
        assert scores["acquire"] == pytest.approx(1.0)

    def test_uninformative_feature_gains_little(self):
        scores = {s.feature: s.score for s in information_gain_scores(
            DOCS, LABELS
        )}
        assert scores["company"] < 0.1

    def test_scores_non_negative(self):
        for s in information_gain_scores(DOCS, LABELS):
            assert s.score >= 0


class TestMutualInformation:
    def test_positive_feature_has_positive_mi(self):
        scores = {s.feature: s.score for s in (
            mutual_information_scores(DOCS, LABELS)
        )}
        assert scores["acquire"] == pytest.approx(1.0)  # log2(1/0.5)

    def test_negative_only_feature_is_minus_inf(self):
        scores = {s.feature: s.score for s in (
            mutual_information_scores(DOCS, LABELS)
        )}
        assert scores["weather"] == float("-inf")

    def test_requires_positive_class(self):
        assert mutual_information_scores([["a"]], [0]) == []


class TestSelectTopK:
    def test_selects_exactly_k(self):
        scores = chi_square_scores(DOCS, LABELS)
        assert len(select_top_k(scores, 2)) == 2

    def test_k_zero(self):
        scores = chi_square_scores(DOCS, LABELS)
        assert select_top_k(scores, 0) == set()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            select_top_k([], -1)

    def test_k_larger_than_features(self):
        scores = chi_square_scores(DOCS, LABELS)
        assert len(select_top_k(scores, 1000)) == len(scores)


def test_rankings_agree_on_the_best_feature():
    chi = chi_square_scores(DOCS, LABELS)[0].feature
    ig = information_gain_scores(DOCS, LABELS)[0].feature
    assert chi in ("acquire", "weather")
    assert ig in ("acquire", "weather")
