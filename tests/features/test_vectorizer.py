"""Vectorizer tests: vocabulary, transform semantics, config."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.vectorizer import Vectorizer, VectorizerConfig

DOCS = [
    ["acquire", "deal", "deal"],
    ["acquire", "merger"],
    ["weather", "rain"],
]


class TestFit:
    def test_vocabulary_covers_all_tokens(self):
        vectorizer = Vectorizer().fit(DOCS)
        assert set(vectorizer.vocabulary) == {
            "acquire", "deal", "merger", "weather", "rain",
        }

    def test_min_df_filters_rare(self):
        vectorizer = Vectorizer(VectorizerConfig(min_df=2)).fit(DOCS)
        assert set(vectorizer.vocabulary) == {"acquire"}

    def test_max_features_truncates_by_df(self):
        vectorizer = Vectorizer(
            VectorizerConfig(max_features=1)
        ).fit(DOCS)
        assert set(vectorizer.vocabulary) == {"acquire"}

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            Vectorizer(VectorizerConfig(min_df=0)).fit(DOCS)

    def test_deterministic_column_order(self):
        a = Vectorizer().fit(DOCS).vocabulary
        b = Vectorizer().fit(DOCS).vocabulary
        assert a == b


class TestTransform:
    def test_counts(self):
        vectorizer = Vectorizer().fit(DOCS)
        X = vectorizer.transform(DOCS)
        row = X[0].toarray().ravel()
        assert row[vectorizer.vocabulary["deal"]] == 2
        assert row[vectorizer.vocabulary["acquire"]] == 1

    def test_binary_mode(self):
        vectorizer = Vectorizer(VectorizerConfig(binary=True)).fit(DOCS)
        X = vectorizer.transform(DOCS)
        assert X.max() == 1.0

    def test_unknown_tokens_ignored(self):
        vectorizer = Vectorizer().fit(DOCS)
        X = vectorizer.transform([["zork", "acquire"]])
        assert X.sum() == 1.0

    def test_shape(self):
        vectorizer = Vectorizer().fit(DOCS)
        X = vectorizer.transform(DOCS)
        assert X.shape == (3, vectorizer.n_features)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Vectorizer().transform(DOCS)

    def test_fit_transform_equivalent(self):
        a = Vectorizer().fit_transform(DOCS).toarray()
        vectorizer = Vectorizer().fit(DOCS)
        b = vectorizer.transform(DOCS).toarray()
        assert np.array_equal(a, b)

    def test_empty_document_row_is_zero(self):
        vectorizer = Vectorizer().fit(DOCS)
        X = vectorizer.transform([[]])
        assert X.sum() == 0.0


class TestFeatureNames:
    def test_names_align_with_columns(self):
        vectorizer = Vectorizer().fit(DOCS)
        names = vectorizer.feature_names()
        for feature, index in vectorizer.vocabulary.items():
            assert names[index] == feature


@given(st.lists(
    st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=10),
    min_size=1, max_size=10,
))
def test_row_sums_equal_kept_token_counts(docs):
    vectorizer = Vectorizer().fit(docs)
    X = vectorizer.transform(docs)
    for row, tokens in enumerate(docs):
        kept = [t for t in tokens if t in vectorizer.vocabulary]
        assert X[row].sum() == len(kept)
