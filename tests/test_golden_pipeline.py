"""Golden regression test: the pipeline's output is pinned to a file.

Runs the fixed-seed scenario in ``tests/golden/regen.py`` — gather,
train, extract, company report, then one web-evolution step and one
alert poll — and compares the result to the committed snapshot.  Any
behaviour change anywhere in the pipeline (tokenization, ranking tie
breaks, dedup thresholds, crawl order...) shows up here as a diff.

If the change is intentional, regenerate and commit the snapshot:

    PYTHONPATH=src python tests/golden/regen.py

and review the JSON diff as part of the PR.
"""

from __future__ import annotations

import json

from tests.golden.regen import GOLDEN_PATH, snapshot


def test_pipeline_output_matches_golden_snapshot():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = snapshot()
    assert current["params"] == golden["params"], (
        "scenario parameters changed — regenerate the golden file: "
        "PYTHONPATH=src python tests/golden/regen.py"
    )
    for key in ("per_driver_counts", "top5", "alert_ids"):
        assert current[key] == golden[key], (
            f"pipeline output drifted from the golden snapshot ({key}). "
            "If intentional, regenerate with "
            "`PYTHONPATH=src python tests/golden/regen.py` and commit "
            "the diff."
        )


def test_golden_snapshot_is_not_vacuous():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert sum(golden["per_driver_counts"].values()) > 0
    assert len(golden["top5"]) == 5
    assert golden["alert_ids"], (
        "the alert leg of the snapshot is empty — it would pin nothing"
    )
