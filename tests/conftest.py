"""Shared fixtures.

Expensive artifacts (synthetic web, gathered ETAP, evaluation dataset)
are session-scoped: integration tests across files reuse one instance.
"""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.evaluation.datasets import DatasetSpec, build_evaluation_dataset
from repro.text.annotator import Annotator


@pytest.fixture(scope="session")
def small_web():
    return build_web(300, CorpusConfig(seed=11))


@pytest.fixture(scope="session")
def annotator():
    return Annotator()


@pytest.fixture(scope="session")
def small_dataset():
    """The DatasetSpec.small() evaluation setup, built once per session."""
    return build_evaluation_dataset(DatasetSpec.small())


@pytest.fixture(scope="session")
def trained_etap(small_dataset):
    """ETAP with classifiers trained for all three drivers."""
    etap = small_dataset.etap
    if not etap.classifiers:
        etap.train(pure_positive=small_dataset.pure_positive)
    return etap
