"""CRM-export tests."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.export import (
    export_events_csv,
    export_events_jsonl,
    export_leads_csv,
    export_leads_jsonl,
)
from repro.core.ranking import (
    CompanyScore,
    make_trigger_events,
    rank_events,
)
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.text.annotator import Annotator

_annotator = Annotator()


@pytest.fixture
def events():
    texts = [
        "Acme Inc acquired Globex Corp for $5 billion.",
        "Initech Ltd acquired Hooli Systems.",
    ]
    items = [
        AnnotatedSnippet(
            snippet=Snippet(doc_id=f"x{i}", index=0, sentences=(t,)),
            annotated=_annotator.annotate(t),
        )
        for i, t in enumerate(texts)
    ]
    return rank_events(make_trigger_events("ma", items, [0.9, 0.7]))


@pytest.fixture
def leads():
    return [
        CompanyScore(company="acme", mrr=0.8, n_trigger_events=3),
        CompanyScore(company="globex", mrr=0.5, n_trigger_events=1),
    ]


class TestEventExports:
    def test_csv_roundtrip(self, events, tmp_path):
        path = export_events_csv(events, tmp_path / "events.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["driver_id"] == "ma"
        assert rows[0]["rank"] == "1"
        assert "acme" in rows[0]["companies"]
        assert float(rows[0]["score"]) == pytest.approx(0.9)

    def test_jsonl_roundtrip(self, events, tmp_path):
        path = export_events_jsonl(events, tmp_path / "events.jsonl")
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(records) == 2
        assert records[0]["companies"] == ["acme", "globex"]
        assert records[1]["rank"] == 2

    def test_empty_events(self, tmp_path):
        path = export_events_csv([], tmp_path / "empty.csv")
        with path.open() as handle:
            assert list(csv.DictReader(handle)) == []


class TestLeadExports:
    def test_csv(self, leads, tmp_path):
        path = export_leads_csv(leads, tmp_path / "leads.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0] == {
            "rank": "1", "company": "acme", "mrr": "0.8",
            "n_trigger_events": "3",
        }

    def test_jsonl(self, leads, tmp_path):
        path = export_leads_jsonl(leads, tmp_path / "leads.jsonl")
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [r["company"] for r in records] == ["acme", "globex"]
        assert records[0]["rank"] == 1
