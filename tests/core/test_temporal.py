"""Temporal resolution and recency-scoring tests (section 6)."""

from __future__ import annotations

import pytest

from repro.core.temporal import (
    extract_years,
    recency_multiplier,
    resolve,
    score_with_recency,
)
from repro.text.annotator import Annotator


class TestExtractYears:
    def test_single_year(self):
        assert extract_years("founded in 1998") == [1998]

    def test_year_range(self):
        assert extract_years("CEO from 1980-1985") == [1980, 1985]

    def test_no_years(self):
        assert extract_years("no dates here") == []

    def test_out_of_range_numbers_ignored(self):
        # 2500 and 1850 fall outside the 1900-2099 window.
        assert extract_years("worth 2500 dollars since 1850") == []
        assert extract_years("worth 2500 dollars since 1950") == [1950]


class TestResolve:
    def test_absolute_year(self):
        reading = resolve("It happened in 2004.", reference_year=2005)
        assert reading.resolved_year == 2004

    def test_range_resolves_to_end(self):
        reading = resolve("served from 1980-1985", reference_year=2005)
        assert reading.resolved_year == 1985

    def test_last_year_relative(self):
        reading = resolve("profits fell last year", reference_year=2005)
        assert reading.resolved_year == 2004
        assert reading.has_relative_reference

    def test_later_this_year(self):
        reading = resolve(
            "will acquire the firm later this year", reference_year=2005
        )
        assert reading.resolved_year == 2005

    def test_no_evidence(self):
        reading = resolve("a pleasant afternoon", reference_year=2005)
        assert reading.resolved_year is None

    def test_current_marker_detected(self):
        reading = resolve(
            "the company announced a deal", reference_year=2005
        )
        assert reading.has_current_marker

    def test_most_recent_year_wins(self):
        reading = resolve(
            "after 1998, the 2005 results improved", reference_year=2005
        )
        assert reading.resolved_year == 2005


class TestRecencyMultiplier:
    def test_current_event_full_weight(self):
        reading = resolve("deal announced in 2005", reference_year=2005)
        assert recency_multiplier(reading, 2005) == pytest.approx(1.0)

    def test_no_evidence_full_weight(self):
        reading = resolve("a deal was made", reference_year=2005)
        # 'announced'-style markers absent; no years: treated current.
        assert recency_multiplier(reading, 2005) == 1.0

    def test_halves_per_half_life(self):
        reading = resolve("back in 2003 it happened", reference_year=2005)
        assert recency_multiplier(
            reading, 2005, half_life_years=2.0
        ) == pytest.approx(0.5)

    def test_old_biography_heavily_discounted(self):
        reading = resolve(
            "was the CEO from 1980-1985", reference_year=2005
        )
        assert recency_multiplier(reading, 2005) < 0.01

    def test_current_marker_floors_multiplier(self):
        reading = resolve(
            "announced results; founded back in 1980", reference_year=2005
        )
        assert recency_multiplier(reading, 2005) == 0.5

    def test_invalid_half_life(self):
        reading = resolve("x", reference_year=2005)
        with pytest.raises(ValueError):
            recency_multiplier(reading, 2005, half_life_years=0)


class TestScoreWithRecency:
    def test_biography_score_crushed(self):
        annotator = Annotator()
        bio = annotator.annotate(
            "Mr. Andersen was the CEO of XYZ Inc. from 1980-1985."
        )
        fresh = annotator.annotate(
            "Acme Inc named Mary Jones CEO, effective June 2005."
        )
        bio_score = score_with_recency(0.95, bio, reference_year=2005)
        fresh_score = score_with_recency(0.95, fresh, reference_year=2005)
        assert fresh_score > 10 * bio_score
