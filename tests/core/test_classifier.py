"""Trigger-event classifier tests (features + denoising + scoring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import TriggerEventClassifier
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.features.abstraction import AbstractionPolicy
from repro.ml.svm import LinearSvm
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig

_annotator = Annotator(NerConfig(gazetteer_coverage=1.0))
_counter = 0


def item(text: str) -> AnnotatedSnippet:
    global _counter
    _counter += 1
    snippet = Snippet(
        doc_id=f"t{_counter}", index=0, sentences=(text,)
    )
    return AnnotatedSnippet(
        snippet=snippet, annotated=_annotator.annotate(text)
    )


@pytest.fixture(scope="module")
def train_sets():
    positives = [
        item(f"{org} agreed to acquire {other} for $5 billion.")
        for org, other in [
            ("Acme Inc", "Globex Corp"),
            ("Initech Ltd", "Hooli Systems"),
            ("Stark Group", "Wayne Industries"),
            ("Umbra Media Corp", "Nimbus Labs"),
            ("Vertex Partners", "Orion Networks"),
            ("Titan Holdings", "Nova Software"),
        ]
    ] * 3
    negatives = [
        item(text)
        for text in [
            "A guide to hiking trails near Tokyo.",
            "The weather in Paris stayed mild all week.",
            "Read our reviews of gardening tools.",
            "Sign up for the newsletter about local sports.",
            "Residents gathered for a community fundraiser.",
            "Ten tips for enjoying music festivals on a budget.",
        ]
    ] * 5
    return positives, negatives


class TestFit:
    def test_fit_and_score_separates(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("mergers_acquisitions")
        clf.fit(positives, negatives)
        pos_scores = clf.score(positives[:3])
        neg_scores = clf.score(negatives[:3])
        assert pos_scores.min() > neg_scores.max()

    def test_summary_populated(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("mergers_acquisitions")
        clf.fit(positives, negatives, pure_positive=positives[:2])
        summary = clf.summary
        assert summary.n_noisy_positive == len(positives)
        assert summary.n_pure_positive == 2
        assert summary.n_negative == len(negatives)
        assert summary.n_features > 0
        assert 1 <= summary.n_iterations <= 2

    def test_empty_sets_rejected(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("x")
        with pytest.raises(ValueError):
            clf.fit([], negatives)
        with pytest.raises(ValueError):
            clf.fit(positives, [])

    def test_score_before_fit_raises(self, train_sets):
        positives, _ = train_sets
        with pytest.raises(RuntimeError):
            TriggerEventClassifier("x").score(positives)

    def test_score_empty_input(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("x").fit(positives, negatives)
        assert clf.score([]).shape == (0,)


class TestPredict:
    def test_threshold_semantics(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("x").fit(positives, negatives)
        strict = clf.predict(positives + negatives, threshold=0.99)
        loose = clf.predict(positives + negatives, threshold=0.01)
        assert strict.sum() <= loose.sum()

    def test_predictions_are_binary(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier("x").fit(positives, negatives)
        predictions = clf.predict(positives)
        assert set(np.unique(predictions)) <= {0, 1}


class TestConfigurations:
    def test_custom_classifier_factory(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier(
            "x", classifier_factory=lambda: LinearSvm(epochs=3)
        )
        clf.fit(positives, negatives)
        assert (clf.score(positives[:3]) > 0.5).all()

    def test_no_abstraction_policy_also_works(self, train_sets):
        positives, negatives = train_sets
        clf = TriggerEventClassifier(
            "x", policy=AbstractionPolicy.none()
        )
        clf.fit(positives, negatives)
        assert clf.score(positives[:1])[0] > 0.5

    def test_features_of_abstraction(self, train_sets):
        positives, _ = train_sets
        clf = TriggerEventClassifier("x")
        tokens = clf.features_of(positives[0])
        assert "__ORG__" in tokens
        assert "__CURRENCY__" in tokens
