"""Sales-driver and snippet-filter tests."""

from __future__ import annotations

import pytest

from repro.core.drivers import (
    all_of,
    any_of,
    builtin_drivers,
    get_driver,
    has,
    has_at_least,
    has_keyword,
    negate,
)
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig


@pytest.fixture(scope="module")
def annotate():
    annotator = Annotator(NerConfig(gazetteer_coverage=1.0))
    return annotator.annotate


class TestCombinators:
    def test_has(self, annotate):
        snippet = annotate("Acme Inc announced results.")
        assert has("ORG")(snippet)
        assert not has("PRSN")(snippet)

    def test_has_at_least_distinct_surfaces(self, annotate):
        one_company_twice = annotate(
            "Acme Inc grew. Acme Inc also hired."
        )
        two_companies = annotate("Acme Inc acquired Globex Corp.")
        assert not has_at_least("ORG", 2)(one_company_twice)
        assert has_at_least("ORG", 2)(two_companies)

    def test_has_keyword_case_insensitive(self, annotate):
        snippet = annotate("They Acquired the firm.")
        assert has_keyword("acquired")(snippet)

    def test_all_of(self, annotate):
        snippet = annotate("Acme Inc named James Smith CEO.")
        check = all_of(has("ORG"), has("PRSN"), has("DESIG"))
        assert check(snippet)
        assert not all_of(has("ORG"), has("CURRENCY"))(snippet)

    def test_any_of(self, annotate):
        snippet = annotate("Revenue grew 12% in the quarter.")
        assert any_of(has("CURRENCY"), has("PRCNT"))(snippet)

    def test_negate(self, annotate):
        snippet = annotate("A quiet day in the garden.")
        assert negate(has("ORG"))(snippet)


class TestBuiltinDrivers:
    def test_three_builtins(self):
        drivers = builtin_drivers()
        assert {d.driver_id for d in drivers} == {
            MERGERS_ACQUISITIONS, CHANGE_IN_MANAGEMENT, REVENUE_GROWTH,
        }

    def test_each_has_five_smart_queries(self):
        # Section 5.1: "Five queries were used for generation of the
        # noisy positive training data for each sales driver."
        for driver in builtin_drivers():
            assert len(driver.smart_queries) == 5

    def test_lookup_by_id(self):
        driver = get_driver(CHANGE_IN_MANAGEMENT)
        assert driver.name == "Change in management"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_driver("steel_production")

    def test_ma_filter_needs_two_orgs(self, annotate):
        driver = get_driver(MERGERS_ACQUISITIONS)
        good = annotate("Acme Inc agreed to acquire Globex Corp.")
        one_org = annotate("Acme Inc agreed to acquire assets.")
        assert driver.snippet_filter(good)
        assert not driver.snippet_filter(one_org)

    def test_cim_filter_needs_designation(self, annotate):
        driver = get_driver(CHANGE_IN_MANAGEMENT)
        good = annotate("Acme Inc named James Smith its new CEO.")
        no_desig = annotate("Acme Inc hired James Smith last week.")
        assert driver.snippet_filter(good)
        assert not driver.snippet_filter(no_desig)

    def test_rg_filter_needs_figure(self, annotate):
        driver = get_driver(REVENUE_GROWTH)
        good = annotate("Acme Inc reported revenue growth of 12%.")
        no_figure = annotate("Acme Inc reported good revenue news.")
        assert driver.snippet_filter(good)
        assert not driver.snippet_filter(no_figure)

    def test_filters_reject_plain_boilerplate(self, annotate):
        boilerplate = annotate(
            "Shares of Acme Inc closed at $12 on Monday."
        )
        for driver in builtin_drivers():
            assert not driver.snippet_filter(boilerplate)
