"""ETAP facade integration tests (gather -> train -> extract -> rank)."""

from __future__ import annotations

import pytest

from repro.core.etap import Etap, EtapConfig
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)


class TestLifecycle:
    def test_train_before_gather_rejected(self, small_web):
        etap = Etap.from_web(small_web)
        with pytest.raises(RuntimeError):
            etap.train()

    def test_extract_before_train_rejected(self, small_web):
        etap = Etap.from_web(small_web)
        etap.gather()
        with pytest.raises(RuntimeError):
            etap.extract_trigger_events()

    def test_gather_requires_web(self, trained_etap):
        from repro.core.etap import Etap as EtapClass
        from repro.gather.store import DocumentStore
        from repro.search.engine import SearchEngine

        etap = EtapClass(DocumentStore(), SearchEngine())
        with pytest.raises(RuntimeError):
            etap.gather()

    def test_unknown_driver_lookup(self, trained_etap):
        with pytest.raises(KeyError):
            trained_etap.score_snippets("steel_production", [])


class TestTrainedPipeline:
    def test_classifier_per_driver(self, trained_etap):
        assert set(trained_etap.classifiers) == {
            MERGERS_ACQUISITIONS, CHANGE_IN_MANAGEMENT, REVENUE_GROWTH,
        }

    def test_noisy_reports_recorded(self, trained_etap):
        for report in trained_etap.noisy_reports.values():
            assert report.snippets_kept > 0

    def test_extraction_returns_ranked_events(self, trained_etap):
        events = trained_etap.extract_trigger_events()
        for driver_id, driver_events in events.items():
            assert driver_events, driver_id
            ranks = [e.rank for e in driver_events]
            assert ranks == list(range(1, len(ranks) + 1))
            scores = [e.score for e in driver_events]
            assert scores == sorted(scores, reverse=True)

    def test_extraction_threshold_monotone(self, trained_etap):
        loose = trained_etap.extract_trigger_events(threshold=0.5)
        strict = trained_etap.extract_trigger_events(threshold=0.95)
        for driver_id in loose:
            assert len(strict[driver_id]) <= len(loose[driver_id])

    def test_most_extracted_events_are_genuine(
        self, trained_etap, small_dataset
    ):
        # Precision over the store's ground truth: extracted snippets
        # should be mostly real trigger events.
        events = trained_etap.extract_trigger_events()
        by_id = {
            d.doc_id: d.metadata["doc_type"]
            for d in trained_etap.store
        }
        expected_type = {
            MERGERS_ACQUISITIONS: "ma_news",
            CHANGE_IN_MANAGEMENT: "cim_news",
            REVENUE_GROWTH: "rg_news",
        }
        for driver_id, driver_events in events.items():
            good = sum(
                by_id[e.item.snippet.doc_id] == expected_type[driver_id]
                for e in driver_events
            )
            # The small-profile corpus carries proportionally more
            # biography/retrospective confusers than the full one, so
            # the bound here is looser than the benches' >= 0.5.
            assert good / len(driver_events) >= 0.4, driver_id

    def test_company_report(self, trained_etap):
        events = trained_etap.extract_trigger_events()
        report = trained_etap.company_report(events)
        assert report
        assert report[0].mrr >= report[-1].mrr
        assert all(s.n_trigger_events >= 1 for s in report)

    def test_semantic_orientation_reranking(self, trained_etap):
        events = trained_etap.extract_trigger_events()
        reranked = trained_etap.rank_by_semantic_orientation(
            events[REVENUE_GROWTH]
        )
        assert len(reranked) == len(events[REVENUE_GROWTH])
        magnitudes = [abs(e.score) for e in reranked]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestConfig:
    def test_defaults_match_paper(self):
        config = EtapConfig()
        assert config.snippet_window == 3  # n = 3 (section 3.1)
        assert config.top_k_per_query == 200  # top 200 documents
        assert config.max_denoise_iter == 2  # "after two iterations"
        assert config.oversample_pure == 3  # "oversampling ... factor of 3"


class TestSinceDayFreshnessWindow:
    """Regression: documents without ``published_day`` metadata must not
    be dropped by ``extract_trigger_events(since_day=...)``."""

    @pytest.fixture(scope="class")
    def dated_etap(self):
        from repro.corpus.generator import CorpusConfig
        from repro.corpus.web import build_web

        web = build_web(150, CorpusConfig(seed=5))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=40, negative_sample_size=400
            ),
        )
        etap.gather()
        etap.train()
        # Strip the publication date from every other stored document,
        # simulating sources that carry no date metadata.
        stripped = set(etap.store.doc_ids()[::2])
        for doc_id in stripped:
            etap.store.get(doc_id).metadata.pop("published_day", None)
        return etap, stripped

    def test_undated_documents_survive_any_horizon(self, dated_etap):
        etap, stripped = dated_etap
        # A horizon later than every simulated publication day: only
        # undated documents can pass the filter.
        events = etap.extract_trigger_events(since_day=10**9)
        flagged_docs = {
            event.item.snippet.doc_id
            for driver_events in events.values()
            for event in driver_events
        }
        assert flagged_docs, "undated documents were dropped"
        assert flagged_docs <= stripped

    def test_horizon_zero_keeps_everything(self, dated_etap):
        etap, _ = dated_etap
        unrestricted = etap.extract_trigger_events()
        horizon_zero = etap.extract_trigger_events(since_day=0)
        assert {
            driver: [e.snippet_id for e in evs]
            for driver, evs in unrestricted.items()
        } == {
            driver: [e.snippet_id for e in evs]
            for driver, evs in horizon_zero.items()
        }

    def test_future_horizon_restricts_dated_documents(self, dated_etap):
        etap, stripped = dated_etap
        unrestricted = etap.extract_trigger_events()
        restricted = etap.extract_trigger_events(since_day=10**9)
        n_unrestricted = sum(len(e) for e in unrestricted.values())
        n_restricted = sum(len(e) for e in restricted.values())
        assert n_restricted < n_unrestricted


class TestProvenanceKeys:
    """Satellite pin: extracted events join back to the store by URL."""

    def test_extracted_events_carry_store_urls(self, trained_etap):
        events = trained_etap.extract_trigger_events()
        checked = 0
        for driver_events in events.values():
            for event in driver_events:
                assert event.url == trained_etap.store.get(
                    event.doc_id
                ).url
                checked += 1
        assert checked > 0

    def test_url_of_unknown_doc_is_empty(self, trained_etap):
        assert trained_etap.url_of("no-such-doc") == ""
