"""Ranking-component tests: score ranking, SO ranking, Equation 2."""

from __future__ import annotations

import pytest

from repro.core.company import CompanyNormalizer
from repro.core.lexicon import OrientationLexicon
from repro.core.ranking import (
    CompanyRanker,
    RecencyAdjustedRanker,
    SemanticOrientationRanker,
    TriggerEvent,
    make_trigger_events,
    rank_events,
)
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig

_annotator = Annotator(NerConfig(gazetteer_coverage=1.0))
_n = 0


def item(text):
    global _n
    _n += 1
    return AnnotatedSnippet(
        snippet=Snippet(doc_id=f"r{_n}", index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )


def event(text, score=0.5, driver="d"):
    return make_trigger_events(driver, [item(text)], [score])[0]


class TestMakeTriggerEvents:
    def test_pairs_scores_and_extracts_companies(self):
        events = make_trigger_events(
            "d",
            [item("Acme Inc acquired Globex Corp.")],
            [0.9],
        )
        assert events[0].score == 0.9
        assert set(events[0].companies) == {"acme", "globex"}

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_trigger_events("d", [item("x.")], [0.1, 0.2])


class TestRankEvents:
    def test_descending_scores_get_ascending_ranks(self):
        events = [
            event("Low scoring snippet.", 0.2),
            event("High scoring snippet.", 0.9),
            event("Middle scoring snippet.", 0.5),
        ]
        ranked = rank_events(events)
        assert [e.rank for e in ranked] == [1, 2, 3]
        assert ranked[0].score == 0.9

    def test_deterministic_tiebreak(self):
        events = [event("Tie one.", 0.5), event("Tie two.", 0.5)]
        assert [e.snippet_id for e in rank_events(events)] == [
            e.snippet_id for e in rank_events(events)
        ]

    def test_empty(self):
        assert rank_events([]) == []


class TestSemanticOrientationRanker:
    def test_ranks_by_orientation_magnitude(self):
        lexicon = OrientationLexicon(
            {"record profits": 2.0, "profit": 1.0, "severe losses": -2.0}
        )
        ranker = SemanticOrientationRanker(lexicon)
        events = [
            event("The firm made a profit."),
            event("The firm posted record profits."),
            event("The firm suffered severe losses."),
        ]
        ranked = ranker.rank(events)
        assert abs(ranked[0].score) == 2.0
        assert abs(ranked[-1].score) == 1.0

    def test_negative_orientation_preserved_in_sign(self):
        lexicon = OrientationLexicon({"severe losses": -2.0})
        ranker = SemanticOrientationRanker(lexicon)
        ranked = ranker.rank([event("They saw severe losses.")])
        assert ranked[0].score == -2.0


def event_with_default_score(text, score=0.9):
    return event(text, score)


class TestRecencyAdjustedRanker:
    def test_old_event_demoted(self):
        current = event(
            "Acme Inc announced a new CEO today.", 0.9
        )
        historical = event(
            "Mr. Smith was the CEO of Acme Inc from 1980-1985.", 0.9
        )
        ranked = RecencyAdjustedRanker(reference_year=2005).rank(
            [historical, current]
        )
        assert ranked[0].snippet_id == current.snippet_id
        assert ranked[1].score < 0.9


def _ranked(events):
    return rank_events(events)


class TestCompanyRanker:
    def test_equation_2_hand_computed(self):
        # Company "acme" has events at ranks 1 and 3 in one driver:
        # MRR = (1/1 + 1/3) / 2.
        e1 = event("Acme Inc acquired Globex Corp.", 0.9, "ma")
        e2 = event("Hooli Systems acquired Initech Ltd.", 0.8, "ma")
        e3 = event("Acme Inc acquired Nimbus Labs.", 0.7, "ma")
        ranked = rank_events([e1, e2, e3])
        scores = CompanyRanker().score_companies({"ma": ranked})
        acme = next(s for s in scores if s.company == "acme")
        assert acme.mrr == pytest.approx((1 + 1 / 3) / 2)
        assert acme.n_trigger_events == 2

    def test_aggregates_across_drivers(self):
        ma = rank_events([event("Acme Inc acquired Globex Corp.",
                                0.9, "ma")])
        rg = rank_events([event("Acme Inc reported revenue of $5 "
                                "billion.", 0.8, "rg")])
        scores = CompanyRanker().score_companies({"ma": ma, "rg": rg})
        acme = next(s for s in scores if s.company == "acme")
        assert acme.n_trigger_events == 2
        assert acme.mrr == pytest.approx(1.0)  # rank 1 in both drivers

    def test_unranked_events_rejected(self):
        unranked = event("Acme Inc acquired Globex Corp.", 0.9)
        with pytest.raises(ValueError):
            CompanyRanker().score_companies({"ma": [unranked]})

    def test_sorted_by_mrr(self):
        events = rank_events([
            event("Acme Inc acquired Globex Corp.", 0.9, "ma"),
            event("Hooli Systems acquired Initech Ltd.", 0.5, "ma"),
        ])
        scores = CompanyRanker().score_companies({"ma": events})
        mrrs = [s.mrr for s in scores]
        assert mrrs == sorted(mrrs, reverse=True)

    def test_custom_normalizer_merges_aliases(self):
        normalizer = CompanyNormalizer()
        normalizer.add_alias("Acme Incorporated", "Acme Inc")
        events = make_trigger_events(
            "ma",
            [item("Acme Inc acquired Globex Corp."),
             item("Acme Incorporated reported results.")],
            [0.9, 0.8],
            normalizer=normalizer,
        )
        ranked = rank_events(events)
        scores = CompanyRanker().score_companies({"ma": ranked})
        acme = next(s for s in scores if s.company == "acme")
        assert acme.n_trigger_events == 2


class TestProvenanceJoinKeys:
    """Satellite pin: events carry stable doc_id + URL join keys."""

    def test_doc_id_is_the_snippet_document(self):
        snippet_item = item("Acme Inc acquired Globex Corp.")
        events = make_trigger_events("ma", [snippet_item], [0.9])
        assert events[0].doc_id == snippet_item.snippet.doc_id
        assert events[0].snippet_id.startswith(events[0].doc_id + "#")

    def test_url_of_resolver_populates_url(self):
        snippet_item = item("Acme Inc acquired Globex Corp.")
        doc_id = snippet_item.snippet.doc_id
        events = make_trigger_events(
            "ma",
            [snippet_item],
            [0.9],
            url_of=lambda d: f"http://corpus/{d}.html",
        )
        assert events[0].url == f"http://corpus/{doc_id}.html"

    def test_url_empty_without_resolver(self):
        assert event("Acme Inc acquired Globex Corp.").url == ""

    def test_rank_and_rescore_preserve_join_keys(self):
        events = rank_events(make_trigger_events(
            "ma",
            [item("Acme Inc acquired Globex Corp.")],
            [0.9],
            url_of=lambda d: f"http://corpus/{d}.html",
        ))
        assert events[0].url.startswith("http://corpus/")
        assert events[0].doc_id  # survives dataclasses.replace
