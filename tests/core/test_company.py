"""Company-name normalization and variation tests."""

from __future__ import annotations

from repro.core.company import CompanyNormalizer, canonical_key
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig


class TestCanonicalKey:
    def test_strips_legal_suffix(self):
        assert canonical_key("Acme Inc") == "acme"
        assert canonical_key("Acme Inc.") == "acme"
        assert canonical_key("Acme Incorporated") == "acme"

    def test_strips_stacked_suffixes(self):
        assert canonical_key("Acme Holdings Inc") == "acme"

    def test_keeps_distinct_sector_words(self):
        assert canonical_key("Acme Data Systems") == "acme data"

    def test_case_insensitive(self):
        assert canonical_key("ACME INC") == canonical_key("acme inc")

    def test_never_empties_single_word(self):
        # A company literally named "Holdings" keeps its name.
        assert canonical_key("Holdings") == "holdings"


class TestNormalizer:
    def test_same_company_variants(self):
        normalizer = CompanyNormalizer()
        assert normalizer.same_company("Acme Inc", "Acme Incorporated")
        assert not normalizer.same_company("Acme Inc", "Globex Corp")

    def test_alias_resolution(self):
        normalizer = CompanyNormalizer()
        normalizer.add_alias("Big Blue", "International Business Machines")
        assert normalizer.normalize("Big Blue") == (
            normalizer.normalize("International Business Machines")
        )

    def test_display_name(self):
        normalizer = CompanyNormalizer()
        normalizer.add_alias("Big Blue", "International Business Machines")
        key = normalizer.normalize("Big Blue")
        assert normalizer.display_name(key) == (
            "International Business Machines"
        )

    def test_display_name_fallback_titlecases(self):
        assert CompanyNormalizer().display_name("acme data") == (
            "Acme Data"
        )

    def test_companies_in_annotated_snippet(self):
        annotator = Annotator(NerConfig(gazetteer_coverage=1.0))
        annotated = annotator.annotate(
            "Acme Inc acquired Globex Corp; Acme Inc rose."
        )
        companies = CompanyNormalizer().companies_in(annotated)
        assert companies == ["acme", "globex"]  # deduped, ordered

    def test_group_mentions(self):
        normalizer = CompanyNormalizer()
        groups = normalizer.group_mentions(
            ["Acme Inc", "Acme Incorporated", "Globex Corp"]
        )
        assert set(groups["acme"]) == {"Acme Inc", "Acme Incorporated"}
        assert groups["globex"] == ["Globex Corp"]


class TestAcronyms:
    def test_acronym_of(self):
        from repro.core.company import acronym_of

        assert acronym_of("International Business Machines") == "IBM"
        assert acronym_of("Acme Data Systems Inc") == "ADS"

    def test_acronym_skips_legal_suffixes(self):
        from repro.core.company import acronym_of

        assert acronym_of("General Electric Company") == "GE"

    def test_acronym_matching_resolves_mention(self):
        normalizer = CompanyNormalizer(match_acronyms=True)
        key = normalizer.register("International Business Machines")
        assert normalizer.normalize("IBM") == key

    def test_acronym_matching_off_by_default(self):
        normalizer = CompanyNormalizer()
        normalizer.register("International Business Machines")
        assert normalizer.normalize("IBM") == "ibm"

    def test_single_letter_acronyms_ignored(self):
        normalizer = CompanyNormalizer(match_acronyms=True)
        normalizer.register("Acme Inc")  # acronym 'A' is too short
        assert normalizer.normalize("A") == "a"
