"""Snippet-generator tests: windowing, labels, raw-text chunking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.snippets import SnippetGenerator
from repro.corpus.generator import CorpusConfig, CorpusGenerator


class TestWindowing:
    def test_default_is_disjoint_threes(self):
        sentences = [f"Sentence {i}." for i in range(7)]
        snippets = SnippetGenerator().from_sentences("d", sentences)
        assert [len(s.sentences) for s in snippets] == [3, 3, 1]

    def test_window_of_two(self):
        sentences = [f"S{i}." for i in range(5)]
        snippets = SnippetGenerator(window=2).from_sentences(
            "d", sentences
        )
        assert [len(s.sentences) for s in snippets] == [2, 2, 1]

    def test_overlapping_stride(self):
        sentences = [f"S{i}." for i in range(4)]
        snippets = SnippetGenerator(window=3, stride=1).from_sentences(
            "d", sentences
        )
        assert len(snippets) == 2
        assert snippets[0].sentences[1] == snippets[1].sentences[0]

    def test_snippet_ids_unique(self):
        sentences = [f"S{i}." for i in range(9)]
        snippets = SnippetGenerator().from_sentences("d", sentences)
        ids = [s.snippet_id for s in snippets]
        assert len(set(ids)) == len(ids)

    def test_text_joins_sentences(self):
        snippets = SnippetGenerator().from_sentences(
            "d", ["One.", "Two.", "Three."]
        )
        assert snippets[0].text == "One. Two. Three."

    def test_empty_sentence_list(self):
        assert SnippetGenerator().from_sentences("d", []) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SnippetGenerator(window=0)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            SnippetGenerator(stride=0)

    def test_misaligned_labels_rejected(self):
        with pytest.raises(ValueError):
            SnippetGenerator().from_sentences(
                "d", ["One."], labels=["x", "y"]
            )


class TestLabels:
    def test_labels_roll_up_into_snippets(self):
        sentences = ["A.", "B.", "C.", "D."]
        labels = [None, "driver1", None, None]
        snippets = SnippetGenerator().from_sentences(
            "d", sentences, labels
        )
        assert snippets[0].true_drivers == {"driver1"}
        assert snippets[1].true_drivers == frozenset()

    def test_is_positive_for(self):
        snippets = SnippetGenerator().from_sentences(
            "d", ["A."], ["driver1"]
        )
        assert snippets[0].is_positive_for("driver1")
        assert not snippets[0].is_positive_for("driver2")


class TestFromDocument:
    def test_document_snippets_carry_ground_truth(self):
        generator = CorpusGenerator(CorpusConfig(seed=2))
        document = generator.generate_document("ma_news")
        snippets = SnippetGenerator().from_document(document)
        assert any(
            s.is_positive_for("mergers_acquisitions") for s in snippets
        )
        assert all(s.doc_id == document.doc_id for s in snippets)

    def test_from_documents_flattens(self):
        generator = CorpusGenerator(CorpusConfig(seed=2))
        documents = [
            generator.generate_document("background") for _ in range(3)
        ]
        snippets = SnippetGenerator().from_documents(documents)
        assert len({s.doc_id for s in snippets}) == 3


class TestFromText:
    def test_uses_sentence_chunker(self):
        text = "Acme grew fast. Globex shrank. Initech held steady. Done."
        snippets = SnippetGenerator().from_text("d", text)
        assert len(snippets) == 2
        assert snippets[0].sentences[0] == "Acme grew fast."

    def test_raw_text_snippets_have_no_truth(self):
        snippets = SnippetGenerator().from_text("d", "One. Two.")
        assert snippets[0].true_drivers == frozenset()


@given(
    n_sentences=st.integers(min_value=0, max_value=40),
    window=st.integers(min_value=1, max_value=6),
)
def test_every_sentence_lands_in_exactly_one_disjoint_window(
    n_sentences, window
):
    sentences = [f"S{i}." for i in range(n_sentences)]
    snippets = SnippetGenerator(window=window).from_sentences(
        "d", sentences
    )
    recovered = [s for snippet in snippets for s in snippet.sentences]
    assert recovered == sentences
