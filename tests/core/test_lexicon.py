"""Semantic-orientation lexicon tests, including PMI-IR induction."""

from __future__ import annotations

import pytest

from repro.core.lexicon import (
    OrientationLexicon,
    induce_lexicon,
    revenue_growth_lexicon,
)
from repro.search.engine import build_engine_from_pairs


class TestLexiconScoring:
    def test_simple_positive(self):
        lexicon = OrientationLexicon({"profit": 1.0})
        assert lexicon.score("a profit was made") == 1.0

    def test_phrase_weights_sum(self):
        lexicon = OrientationLexicon({"profit": 1.0, "loss": -1.0})
        assert lexicon.score("profit here, loss there") == 0.0

    def test_longer_phrase_shadows_substring(self):
        # "sharp decline" must not also count "decline".
        lexicon = OrientationLexicon(
            {"sharp decline": -2.0, "decline": -1.0}
        )
        assert lexicon.score("a sharp decline happened") == -2.0

    def test_separate_occurrences_both_count(self):
        lexicon = OrientationLexicon(
            {"sharp decline": -2.0, "decline": -1.0}
        )
        text = "a sharp decline, then another decline"
        assert lexicon.score(text) == -3.0

    def test_punctuation_stripped(self):
        lexicon = OrientationLexicon({"profit": 1.0})
        assert lexicon.score("Profit!") == 1.0

    def test_add_normalizes(self):
        lexicon = OrientationLexicon()
        lexicon.add("  Sharp   Decline ", -2.0)
        assert lexicon.weights == {"sharp decline": -2.0}

    def test_add_empty_rejected(self):
        with pytest.raises(ValueError):
            OrientationLexicon().add("   ", 1.0)

    def test_merge(self):
        lexicon = OrientationLexicon({"profit": 1.0})
        lexicon.merge({"loss": -1.0})
        assert len(lexicon) == 2

    def test_empty_lexicon_scores_zero(self):
        assert OrientationLexicon().score("anything at all") == 0.0


class TestRevenueGrowthLexicon:
    def test_paper_examples_weighted_strongly(self):
        lexicon = revenue_growth_lexicon()
        # Section 4: 'sharp decline' weighted more than 'loss'.
        assert abs(lexicon.weights["sharp decline"]) > abs(
            lexicon.weights["loss"]
        )
        assert lexicon.weights["significant growth"] > (
            lexicon.weights["profit"]
        )

    def test_signs(self):
        lexicon = revenue_growth_lexicon()
        assert lexicon.weights["solid quarter"] > 0
        assert lexicon.weights["severe losses"] < 0

    def test_scores_example_snippets(self):
        lexicon = revenue_growth_lexicon()
        strong = "The company posted record profits and solid quarter."
        weak = "The company posted a profit."
        assert lexicon.score(strong) > lexicon.score(weak) > 0


class TestPmiInduction:
    @pytest.fixture(scope="class")
    def engine(self):
        documents = []
        for i in range(12):
            documents.append(
                (f"good{i}",
                 "the company saw excellent growth and stellar gains")
            )
            documents.append(
                (f"bad{i}",
                 "the company suffered poor results and dire losses")
            )
        documents.append(("neutral", "the company exists"))
        return build_engine_from_pairs(documents)

    def test_positive_candidate_gets_positive_weight(self, engine):
        lexicon = induce_lexicon(
            engine, ["stellar gains"],
            positive_seeds=["excellent"], negative_seeds=["poor"],
        )
        assert lexicon.weights["stellar gains"] > 0

    def test_negative_candidate_gets_negative_weight(self, engine):
        lexicon = induce_lexicon(
            engine, ["dire losses"],
            positive_seeds=["excellent"], negative_seeds=["poor"],
        )
        assert lexicon.weights["dire losses"] < 0

    def test_unseen_candidate_skipped(self, engine):
        lexicon = induce_lexicon(
            engine, ["purple elephants"],
            positive_seeds=["excellent"], negative_seeds=["poor"],
        )
        assert "purple elephants" not in lexicon.weights

    def test_weights_clipped_to_scale(self, engine):
        lexicon = induce_lexicon(
            engine, ["stellar gains", "dire losses"],
            positive_seeds=["excellent"], negative_seeds=["poor"],
            scale=1.5,
        )
        for weight in lexicon.weights.values():
            assert -1.5 <= weight <= 1.5

    def test_empty_seeds_rejected(self, engine):
        with pytest.raises(ValueError):
            induce_lexicon(engine, ["x"], positive_seeds=[])
