"""Classifier persistence tests: save/load roundtrips per model kind."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import TriggerEventClassifier
from repro.core.persistence import (
    UnsupportedModelError,
    classifier_to_dict,
    load_classifier,
    load_classifiers,
    save_classifier,
    save_classifiers,
)
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.ml.logreg import LogisticRegression
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.svm import LinearSvm
from repro.text.annotator import Annotator

_annotator = Annotator()
_n = 0


def item(text):
    global _n
    _n += 1
    return AnnotatedSnippet(
        snippet=Snippet(doc_id=f"p{_n}", index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )


@pytest.fixture(scope="module")
def train_sets():
    positives = [
        item(f"{a} agreed to acquire {b} for $5 billion.")
        for a, b in [
            ("Acme Inc", "Globex Corp"), ("Initech Ltd", "Hooli Systems"),
            ("Stark Group", "Wayne Industries"),
        ]
    ] * 4
    negatives = [
        item(t) for t in [
            "A guide to hiking trails near Tokyo.",
            "The weather stayed mild all week.",
            "Read our reviews of gardening tools.",
        ]
    ] * 6
    return positives, negatives


FACTORIES = {
    "multinomial_nb": None,  # classifier default
    "bernoulli_nb": BernoulliNaiveBayes,
    "linear_svm": lambda: LinearSvm(epochs=3),
}


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_roundtrip_preserves_scores(kind, train_sets, tmp_path):
    positives, negatives = train_sets
    kwargs = {}
    if FACTORIES[kind] is not None:
        kwargs["classifier_factory"] = FACTORIES[kind]
    clf = TriggerEventClassifier("mergers_acquisitions", **kwargs)
    clf.fit(positives, negatives)

    path = tmp_path / f"{kind}.json"
    save_classifier(clf, path)
    loaded = load_classifier(path)

    sample = positives[:3] + negatives[:3]
    assert np.allclose(clf.score(sample), loaded.score(sample))
    assert loaded.driver_id == "mergers_acquisitions"
    assert loaded.policy == clf.policy


def test_logistic_regression_roundtrip(train_sets, tmp_path):
    # LR lacks sample_weight-free fit inside the reducer?  It supports
    # weights, so it goes through the denoiser directly.
    positives, negatives = train_sets
    clf = TriggerEventClassifier(
        "mergers_acquisitions", classifier_factory=LogisticRegression
    )
    clf.fit(positives, negatives)
    path = tmp_path / "lr.json"
    save_classifier(clf, path)
    loaded = load_classifier(path)
    sample = positives[:2] + negatives[:2]
    assert np.allclose(clf.score(sample), loaded.score(sample))


def test_unfitted_classifier_rejected(tmp_path):
    clf = TriggerEventClassifier("x")
    with pytest.raises(ValueError):
        save_classifier(clf, tmp_path / "x.json")


def test_unsupported_model_rejected(train_sets, tmp_path):
    class WeirdModel:
        def fit(self, X, y, sample_weight=None):
            return self

        def predict(self, X):
            return np.ones(X.shape[0], dtype=np.int64)

        def predict_proba(self, X):
            return np.tile([0.2, 0.8], (X.shape[0], 1))

    positives, negatives = train_sets
    clf = TriggerEventClassifier("x", classifier_factory=WeirdModel)
    clf.fit(positives, negatives)
    with pytest.raises(UnsupportedModelError):
        classifier_to_dict(clf)


def test_bad_format_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format_version": 99}')
    with pytest.raises(ValueError):
        load_classifier(path)


def test_directory_roundtrip(train_sets, tmp_path):
    positives, negatives = train_sets
    classifiers = {}
    for driver_id in ("a_driver", "b_driver"):
        clf = TriggerEventClassifier(driver_id)
        clf.fit(positives, negatives)
        classifiers[driver_id] = clf

    written = save_classifiers(classifiers, tmp_path / "models")
    assert len(written) == 2
    loaded = load_classifiers(tmp_path / "models")
    assert set(loaded) == {"a_driver", "b_driver"}
    sample = positives[:2]
    for driver_id, clf in classifiers.items():
        assert np.allclose(
            clf.score(sample), loaded[driver_id].score(sample)
        )
