"""Training-data generation tests (section 3.3.1)."""

from __future__ import annotations

import pytest

from repro.core.drivers import get_driver
from repro.core.training import TrainingDataGenerator
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
)
from repro.gather.pipeline import DataGatherer


@pytest.fixture(scope="module")
def generator(small_web):
    gatherer = DataGatherer(small_web, max_pages=10_000)
    gatherer.gather()
    return TrainingDataGenerator(gatherer.store, gatherer.engine)


class TestNoisyPositive:
    def test_produces_snippets_and_report(self, generator):
        driver = get_driver(CHANGE_IN_MANAGEMENT)
        items, report = generator.noisy_positive(
            driver, top_k_per_query=40
        )
        assert items
        assert report.snippets_kept == len(items)
        assert report.snippets_seen >= report.snippets_kept
        assert report.queries_run == 5

    def test_all_kept_snippets_pass_the_filter(self, generator):
        driver = get_driver(MERGERS_ACQUISITIONS)
        items, _ = generator.noisy_positive(driver, top_k_per_query=40)
        for item in items:
            assert driver.snippet_filter(item.annotated)

    def test_noisy_set_is_mostly_positive(self, generator):
        # The point of smart queries + filters: high (not perfect)
        # purity.
        driver = get_driver(CHANGE_IN_MANAGEMENT)
        items, _ = generator.noisy_positive(driver, top_k_per_query=40)
        positives = sum(
            item.snippet.is_positive_for(driver.driver_id) is True
            or driver.driver_id in _truth_for(generator, item)
            for item in items
        )
        assert positives / len(items) >= 0.6

    def test_rejection_rate_nonzero(self, generator):
        # Figure 6: relevant pages contain snippets the filter rejects.
        driver = get_driver(CHANGE_IN_MANAGEMENT)
        _, report = generator.noisy_positive(driver, top_k_per_query=40)
        assert report.filter_rejection_rate > 0


def _truth_for(generator, item):
    """Ground-truth drivers of the snippet's source document."""
    from repro.corpus.generator import driver_for_doc_type

    document = generator.store.get(item.snippet.doc_id)
    driver = driver_for_doc_type(document.metadata.get("doc_type", ""))
    return {driver} if driver else set()


class TestNegativeSample:
    def test_requested_size(self, generator):
        sample = generator.negative_sample(50)
        assert len(sample) == 50

    def test_deterministic_given_seed(self, generator):
        a = generator.negative_sample(20, seed=5)
        b = generator.negative_sample(20, seed=5)
        assert [x.snippet.snippet_id for x in a] == [
            x.snippet.snippet_id for x in b
        ]

    def test_different_seeds_differ(self, generator):
        a = generator.negative_sample(20, seed=5)
        b = generator.negative_sample(20, seed=6)
        assert [x.snippet.snippet_id for x in a] != [
            x.snippet.snippet_id for x in b
        ]

    def test_invalid_size(self, generator):
        with pytest.raises(ValueError):
            generator.negative_sample(0)

    def test_sample_spans_many_documents(self, generator):
        sample = generator.negative_sample(100)
        doc_ids = {item.snippet.doc_id for item in sample}
        assert len(doc_ids) > 30


class TestAnnotationCache:
    def test_same_snippet_annotated_once(self, generator):
        snippets = generator.snippets_of_document(
            generator.store.doc_ids()[0]
        )
        first = generator.annotate_snippets(snippets)
        second = generator.annotate_snippets(snippets)
        for a, b in zip(first, second):
            assert a.annotated is b.annotated
