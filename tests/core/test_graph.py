"""Company co-mention graph tests."""

from __future__ import annotations

import pytest

from repro.core.graph import (
    build_company_graph,
    central_companies,
    deal_pairs,
    related_companies,
)
from repro.core.ranking import make_trigger_events, rank_events
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.text.annotator import Annotator

_annotator = Annotator()
_n = 0


def event(text, score, driver):
    global _n
    _n += 1
    item = AnnotatedSnippet(
        snippet=Snippet(doc_id=f"g{_n}", index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )
    return make_trigger_events(driver, [item], [score])[0]


@pytest.fixture
def events_by_driver():
    ma = rank_events([
        event("Acme Inc acquired Globex Corp.", 0.9, "ma"),
        event("Acme Inc acquired Initech Ltd.", 0.8, "ma"),
        event("Hooli Systems acquired Nimbus Labs.", 0.7, "ma"),
    ])
    rg = rank_events([
        event("Acme Inc and Globex Corp reported revenue of "
              "$5 billion.", 0.6, "rg"),
    ])
    return {"ma": ma, "rg": rg}


class TestBuildGraph:
    def test_nodes_and_edges(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        assert {"acme", "globex", "initech", "hooli", "nimbus"} <= set(
            graph.nodes
        )
        assert graph.has_edge("acme", "globex")
        assert graph.has_edge("hooli", "nimbus")
        assert not graph.has_edge("acme", "hooli")

    def test_edge_weight_accumulates_across_drivers(
        self, events_by_driver
    ):
        graph = build_company_graph(events_by_driver)
        # acme-globex: 0.9 from M&A + 0.6 from revenue growth.
        assert graph["acme"]["globex"]["weight"] == pytest.approx(1.5)
        assert graph["acme"]["globex"]["drivers"] == {"ma", "rg"}

    def test_event_count_attribute(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        assert graph.nodes["acme"]["event_count"] == 3

    def test_single_company_event_adds_node_only(self):
        single = rank_events([
            event("Acme Inc reported revenue of $1 billion.", 0.5, "rg")
        ])
        graph = build_company_graph({"rg": single})
        assert "acme" in graph.nodes
        assert graph.number_of_edges() == 0

    def test_empty_input(self):
        graph = build_company_graph({})
        assert graph.number_of_nodes() == 0


class TestCentrality:
    def test_hub_company_ranks_first(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        ranked = central_companies(graph)
        assert ranked[0].company == "acme"
        assert ranked[0].degree == 2  # globex + initech

    def test_top_limits_output(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        assert len(central_companies(graph, top=2)) == 2

    def test_empty_graph(self):
        import networkx as nx

        assert central_companies(nx.Graph()) == []


class TestNeighbourhood:
    def test_related_sorted_by_weight(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        related = related_companies(graph, "acme")
        assert related[0][0] == "globex"  # weight 1.5 beats 0.8

    def test_unknown_company(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        assert related_companies(graph, "zork") == []


class TestDealPairs:
    def test_ma_deal_sheet(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        pairs = deal_pairs(graph, driver_id="ma")
        endpoints = {(a, b) for a, b, _ in pairs}
        assert ("acme", "globex") in endpoints
        assert ("hooli", "nimbus") in endpoints

    def test_sorted_by_weight(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        pairs = deal_pairs(graph, driver_id="ma")
        weights = [w for _, _, w in pairs]
        assert weights == sorted(weights, reverse=True)

    def test_driver_filter(self, events_by_driver):
        graph = build_company_graph(events_by_driver)
        rg_pairs = deal_pairs(graph, driver_id="rg")
        assert all(
            {a, b} == {"acme", "globex"} for a, b, _ in rg_pairs
        )
