"""Alert-loop tests: evolving web -> incremental gather -> alerts."""

from __future__ import annotations

import pytest

from repro.core.alerts import AlertService
from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import LATEST_HUB_URL, WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web


@pytest.fixture(scope="module")
def watched():
    web = build_web(400, CorpusConfig(seed=23))
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=60, negative_sample_size=800),
    )
    etap.gather()
    etap.train()
    evolver = WebEvolver(web, CorpusConfig(seed=555))
    return etap, evolver


class TestWebEvolver:
    def test_advance_publishes_pages(self, watched):
        etap, evolver = watched
        before = len(evolver.web)
        documents = evolver.advance(10)
        assert len(documents) == 10
        assert len(evolver.web) >= before + 10

    def test_latest_hub_links_new_docs(self, watched):
        etap, evolver = watched
        documents = evolver.advance(5)
        hub = evolver.web.fetch(LATEST_HUB_URL)
        for document in documents:
            assert document.url in hub.links

    def test_front_page_links_latest_hub(self, watched):
        etap, evolver = watched
        evolver.advance(3)
        from repro.corpus.web import FRONT_PAGE_URL

        assert LATEST_HUB_URL in evolver.web.fetch(FRONT_PAGE_URL).links

    def test_new_doc_ids_do_not_collide(self, watched):
        etap, evolver = watched
        documents = evolver.advance(5)
        existing = set(etap.store.doc_ids())
        for document in documents:
            assert document.doc_id not in existing

    def test_invalid_count(self, watched):
        _, evolver = watched
        with pytest.raises(ValueError):
            evolver.advance(0)


class TestAlertService:
    def test_requires_trained_etap(self):
        web = build_web(50)
        etap = Etap.from_web(web)
        etap.gather()
        with pytest.raises(ValueError):
            AlertService(etap)

    def test_first_poll_without_changes_is_quiet(self):
        # Fresh pipeline (the shared fixture's web already evolved).
        web = build_web(400, CorpusConfig(seed=77))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=40, negative_sample_size=500
            ),
        )
        etap.gather()
        etap.train()
        service = AlertService(etap)
        report = service.poll()
        assert report.new_documents == 0
        assert report.alerts == []

    def test_alerts_fire_for_new_trigger_docs(self, watched):
        etap, evolver = watched
        service = AlertService(etap)
        total_alerts = []
        trigger_docs = 0
        for _ in range(4):
            documents = evolver.advance(25)
            trigger_docs += sum(
                d.doc_type in ("ma_news", "cim_news", "rg_news")
                for d in documents
            )
            report = service.poll()
            # >=: earlier evolver tests may have left unharvested pages.
            assert report.new_documents >= 25
            total_alerts.extend(report.alerts)
        assert trigger_docs > 0
        assert total_alerts  # at least some of those raised alerts

    def test_alerts_not_repeated_across_cycles(self, watched):
        etap, evolver = watched
        service = AlertService(etap)
        evolver.advance(20)
        first = service.poll()
        second = service.poll()  # nothing new published since
        assert second.new_documents == 0
        assert second.alerts == []
        # One snippet may alert under several drivers, but never twice
        # under the same driver.
        first_ids = {
            (a.driver_id, a.event.snippet_id) for a in first.alerts
        }
        assert len(first_ids) == len(first.alerts)

    def test_alert_metadata(self, watched):
        etap, evolver = watched
        service = AlertService(etap, threshold=0.5)
        evolver.advance(30)
        report = service.poll()
        for alert in report.alerts:
            assert alert.cycle == report.cycle
            assert alert.score >= 0.5
            assert alert.driver_id in etap.classifiers
            assert alert.text


class TestNearDuplicateSuppression:
    @staticmethod
    def _alerts_with(suppress: bool) -> list:
        """Run an identical (seeded) pipeline with/without suppression."""
        web = build_web(400, CorpusConfig(seed=31))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=60, negative_sample_size=800
            ),
        )
        etap.gather()
        etap.train()
        service = AlertService(
            etap, threshold=0.9, suppress_near_duplicates=suppress
        )
        evolver = WebEvolver(
            web, CorpusConfig(seed=900, mirror_rate=1.0)
        )
        alerts = []
        for _ in range(2):
            evolver.advance(40)
            alerts.extend(service.poll().alerts)
        return alerts

    def test_syndicated_copies_alert_once(self):
        plain = self._alerts_with(suppress=False)
        deduped = self._alerts_with(suppress=True)
        assert plain, "the mirrored batches must raise alerts at all"
        # Mirrors double many stories in the plain stream; suppression
        # removes them.
        assert len(deduped) < len(plain)

    def test_deduped_stream_has_no_near_identical_texts(self):
        from repro.gather.dedup import jaccard, shingles

        deduped = self._alerts_with(suppress=True)
        by_driver: dict[str, list] = {}
        for alert in deduped:
            by_driver.setdefault(alert.driver_id, []).append(alert)
        for alerts in by_driver.values():
            for i, a in enumerate(alerts):
                for b in alerts[i + 1:]:
                    similarity = jaccard(
                        shingles(a.text, 2), shingles(b.text, 2)
                    )
                    assert similarity < 0.95, (a.text, b.text)


class TestIdempotency:
    """Satellite pin: alert identity is stable across polls."""

    def test_alert_ids_are_lineage_derived(self, watched):
        from repro.core.alerts import idempotency_key

        etap, evolver = watched
        service = AlertService(etap, threshold=0.7)
        evolver.advance(25)
        report = service.poll()
        assert report.alerts, "need alerts to check ids on"
        for alert in report.alerts:
            assert alert.alert_id == idempotency_key(
                alert.driver_id,
                alert.event.snippet_id,
                alert.event.companies,
            )
            assert len(alert.alert_id) == 16

    def test_reprocessed_documents_do_not_realert(self, watched):
        etap, evolver = watched
        service = AlertService(etap, threshold=0.7)
        evolver.advance(25)
        first = service.poll()
        assert first.alerts
        # Force the service to rescore the same documents, simulating
        # a poll that re-surfaces already-alerted stories.
        rescored = {a.event.doc_id for a in first.alerts}
        service._processed_docs -= rescored
        second = service.poll()
        assert second.new_documents >= len(rescored)
        first_keys = {a.alert_id for a in first.alerts}
        assert all(
            a.alert_id not in first_keys for a in second.alerts
        )

    def test_key_depends_on_all_identity_parts(self):
        from repro.core.alerts import idempotency_key

        base = idempotency_key("ma", "doc-1#0", ("acme",))
        assert base == idempotency_key("ma", "doc-1#0", ("acme",))
        assert base != idempotency_key("cim", "doc-1#0", ("acme",))
        assert base != idempotency_key("ma", "doc-1#1", ("acme",))
        assert base != idempotency_key("ma", "doc-1#0", ("globex",))
        # Company order does not matter (sorted into the key).
        assert idempotency_key(
            "ma", "doc-1#0", ("b", "a")
        ) == idempotency_key("ma", "doc-1#0", ("a", "b"))
