"""Industry-profile tests."""

from __future__ import annotations

import pytest

from repro.core.industry import (
    IndustryProfile,
    get_industry,
    it_industry,
    steel_industry,
)
from repro.core.ranking import make_trigger_events, rank_events
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.text.annotator import Annotator

_annotator = Annotator()
_n = 0


def event(text, score, driver):
    global _n
    _n += 1
    item = AnnotatedSnippet(
        snippet=Snippet(doc_id=f"i{_n}", index=0, sentences=(text,)),
        annotated=_annotator.annotate(text),
    )
    return make_trigger_events(driver, [item], [score])[0]


@pytest.fixture
def events_by_driver():
    return {
        MERGERS_ACQUISITIONS: rank_events([
            event("Acme Inc acquired Globex Corp.", 0.9,
                  MERGERS_ACQUISITIONS),
        ]),
        REVENUE_GROWTH: rank_events([
            event("Initech Ltd reported revenue of $5 billion.", 0.8,
                  REVENUE_GROWTH),
        ]),
        CHANGE_IN_MANAGEMENT: rank_events([
            event("Initech Ltd named Mary Jones CEO.", 0.7,
                  CHANGE_IN_MANAGEMENT),
        ]),
    }


class TestProfiles:
    def test_builtin_lookup(self):
        assert get_industry("it").industry_id == "it"
        assert get_industry("steel").industry_id == "steel"

    def test_unknown_industry(self):
        with pytest.raises(KeyError):
            get_industry("buggy-whips")

    def test_steel_excludes_ma(self):
        # The paper's example: M&A is not a steel sales driver.
        assert MERGERS_ACQUISITIONS not in steel_industry().driver_ids

    def test_it_includes_all_three(self):
        assert len(it_industry().driver_ids) == 3

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            IndustryProfile("x", "X", {})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            IndustryProfile("x", "X", {"d": -1.0})


class TestLeadLists:
    def test_steel_ignores_ma_events(self, events_by_driver):
        leads = steel_industry().lead_list(events_by_driver)
        companies = {lead.company for lead in leads}
        assert "acme" not in companies  # only appeared via M&A
        assert "initech" in companies

    def test_it_counts_all_events(self, events_by_driver):
        leads = it_industry().lead_list(events_by_driver)
        initech = next(l for l in leads if l.company == "initech")
        assert initech.n_trigger_events == 2

    def test_filter_events(self, events_by_driver):
        filtered = steel_industry().filter_events(events_by_driver)
        assert MERGERS_ACQUISITIONS not in filtered
        assert REVENUE_GROWTH in filtered

    def test_weights_change_ordering(self):
        # Same events; an industry that only values CiM flips the order
        # relative to one that only values RG.
        shared = {
            REVENUE_GROWTH: rank_events([
                event("Acme Inc reported revenue of $1 billion.", 0.9,
                      REVENUE_GROWTH),
                event("Globex Corp reported revenue of $2 billion.",
                      0.5, REVENUE_GROWTH),
            ]),
            CHANGE_IN_MANAGEMENT: rank_events([
                event("Globex Corp named Mary Jones CEO.", 0.9,
                      CHANGE_IN_MANAGEMENT),
                event("Acme Inc named John Smith CTO.", 0.5,
                      CHANGE_IN_MANAGEMENT),
            ]),
        }
        rg_only = IndustryProfile(
            "rg", "RG", {REVENUE_GROWTH: 1.0}
        ).lead_list(shared)
        cim_only = IndustryProfile(
            "cim", "CiM", {CHANGE_IN_MANAGEMENT: 1.0}
        ).lead_list(shared)
        assert rg_only[0].company == "acme"
        assert cim_only[0].company == "globex"
