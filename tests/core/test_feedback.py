"""Analyst feedback-loop tests."""

from __future__ import annotations

import pytest

from repro.core.feedback import FeedbackLoop
from repro.core.temporal import resolve
from repro.corpus.templates import CHANGE_IN_MANAGEMENT


def _looks_like_biography(text: str) -> bool:
    reading = resolve(text, reference_year=2006)
    return (
        reading.resolved_year is not None
        and reading.resolved_year < 2004
    )


@pytest.fixture(autouse=True)
def _restore_classifiers(trained_etap):
    """Feedback retraining replaces classifiers on the shared
    session-scoped etap; restore them so later tests see the original
    models."""
    snapshot = dict(trained_etap.classifiers)
    yield
    trained_etap.classifiers = snapshot


class TestRecording:
    def test_requires_trained_etap(self, small_web):
        from repro.core.etap import Etap

        etap = Etap.from_web(small_web)
        etap.gather()
        with pytest.raises(ValueError):
            FeedbackLoop(etap)

    def test_record_and_count(self, trained_etap):
        loop = FeedbackLoop(trained_etap)
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        loop.record(events[0], valid=True)
        loop.record(events[1], valid=False)
        assert loop.n_verdicts == 2
        verdicts = loop.verdicts_for(CHANGE_IN_MANAGEMENT)
        assert sum(v.valid for v in verdicts) == 1

    def test_later_verdict_overwrites(self, trained_etap):
        loop = FeedbackLoop(trained_etap)
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        loop.record(events[0], valid=True)
        loop.record(events[0], valid=False)
        assert loop.n_verdicts == 1
        assert not loop.verdicts_for(CHANGE_IN_MANAGEMENT)[0].valid

    def test_record_many(self, trained_etap):
        loop = FeedbackLoop(trained_etap)
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        loop.record_many(events[:4], valid=True)
        assert loop.n_verdicts == 4


class TestRetrain:
    def test_rejecting_biographies_reduces_their_scores(
        self, trained_etap
    ):
        """The paper's section 5.2 loop: analysts reject biography
        alerts; retraining pushes those snippets down."""
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        biographies = [
            e for e in events if _looks_like_biography(e.text)
        ]
        genuine = [
            e for e in events if not _looks_like_biography(e.text)
        ]
        if len(biographies) < 3:
            pytest.skip("corpus sample surfaced too few biography FPs")

        loop = FeedbackLoop(trained_etap)
        loop.record_many(biographies, valid=False)
        loop.record_many(genuine[:10], valid=True)

        items = [e.item for e in biographies]
        before = trained_etap.classifiers[CHANGE_IN_MANAGEMENT].score(
            items
        )
        report = loop.retrain(CHANGE_IN_MANAGEMENT)
        after = trained_etap.classifiers[CHANGE_IN_MANAGEMENT].score(
            items
        )
        assert report.n_rejected == len(biographies)
        assert after.mean() < before.mean()

    def test_confirmed_events_keep_high_scores(self, trained_etap):
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        genuine = [
            e for e in events if not _looks_like_biography(e.text)
        ][:10]
        loop = FeedbackLoop(trained_etap)
        loop.record_many(genuine, valid=True)
        loop.retrain(CHANGE_IN_MANAGEMENT)
        scores = trained_etap.classifiers[CHANGE_IN_MANAGEMENT].score(
            [e.item for e in genuine]
        )
        assert scores.mean() > 0.5

    def test_report_counts(self, trained_etap):
        events = trained_etap.extract_trigger_events()[
            CHANGE_IN_MANAGEMENT
        ]
        loop = FeedbackLoop(trained_etap)
        loop.record_many(events[:3], valid=True)
        loop.record_many(events[3:5], valid=False)
        report = loop.retrain(CHANGE_IN_MANAGEMENT)
        assert report.n_confirmed == 3
        assert report.n_rejected == 2
